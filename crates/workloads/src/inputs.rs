//! Seeded input-stream generators.
//!
//! Stand-ins for the paper's traces: tcpdump captures for Snort,
//! concatenated Linux executables for ClamAV, and IBM's released trace files
//! for PowerEN. Each generator is deterministic in its seed, so every
//! experiment is exactly reproducible.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Network-traffic-like stream: ASCII protocol lines interleaved with
/// high-bit binary payload segments, with `spice` tokens (rule keywords)
/// sprinkled in so the NIDS machines actually fire.
pub fn network_trace(seed: u64, len: usize, spice: &[Vec<u8>]) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x006e_6574_776f_726b);
    let mut out = Vec::with_capacity(len + 64);
    let methods: [&[u8]; 4] = [b"GET ", b"POST ", b"HEAD ", b"PUT "];
    while out.len() < len {
        match rng.random_range(0..10u32) {
            // HTTP-ish request line.
            0..=3 => {
                out.extend_from_slice(methods[rng.random_range(0..methods.len())]);
                out.push(b'/');
                for _ in 0..rng.random_range(3..12) {
                    out.push(rng.random_range(b'a'..=b'z'));
                }
                out.extend_from_slice(b" HTTP/1.1\r\nHost: ");
                for _ in 0..rng.random_range(4..10) {
                    out.push(rng.random_range(b'a'..=b'z'));
                }
                out.extend_from_slice(b".com\r\n\r\n");
            }
            // Binary payload burst (high-bit bytes — counter triggers).
            4..=6 => {
                for _ in 0..rng.random_range(8..40) {
                    out.push(rng.random_range(0x80..=0xff));
                }
            }
            // Plain ASCII chatter.
            7..=8 => {
                for _ in 0..rng.random_range(10..30) {
                    let b = rng.random_range(0..40u8);
                    out.push(if b < 26 { b'a' + b } else { b' ' });
                }
            }
            // A rule keyword, occasionally — real attack payloads are rare
            // relative to benign traffic, and keyword-dense streams would
            // park chunk boundaries inside rule prefixes.
            _ => {
                if !spice.is_empty() && rng.random_bool(0.3) {
                    let k = &spice[rng.random_range(0..spice.len())];
                    out.extend_from_slice(k);
                }
            }
        }
    }
    out.truncate(len);
    out
}

/// Executable-like binary blob: instruction-ish byte runs, zero padding,
/// string-table fragments, embedded `signatures`.
pub fn executable_blob(seed: u64, len: usize, signatures: &[Vec<u8>]) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0062_696e_6172_7900);
    let mut out = Vec::with_capacity(len + 64);
    while out.len() < len {
        match rng.random_range(0..10u32) {
            // Code-like section: arbitrary bytes, high-bit heavy.
            0..=4 => {
                for _ in 0..rng.random_range(16..64) {
                    out.push(rng.random());
                }
            }
            // Zero padding runs.
            5..=6 => {
                let run = rng.random_range(4..32);
                out.extend(std::iter::repeat_n(0u8, run));
            }
            // String table fragment.
            7..=8 => {
                for _ in 0..rng.random_range(6..20) {
                    out.push(rng.random_range(b'A'..=b'z'));
                }
                out.push(0);
            }
            // A signature hit, occasionally (infections are rare).
            _ => {
                if !signatures.is_empty() && rng.random_bool(0.3) {
                    let s = &signatures[rng.random_range(0..signatures.len())];
                    out.extend_from_slice(s);
                }
            }
        }
    }
    out.truncate(len);
    out
}

/// Pattern-dense ASCII text (the PowerEN trace style): words, digits,
/// punctuation, with `words` tokens mixed in.
pub fn pattern_text(seed: u64, len: usize, words: &[Vec<u8>]) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7465_7874);
    let mut out = Vec::with_capacity(len + 32);
    while out.len() < len {
        match rng.random_range(0..8u32) {
            0..=3 => {
                for _ in 0..rng.random_range(3..10) {
                    out.push(rng.random_range(b'a'..=b'z'));
                }
                out.push(b' ');
            }
            4..=5 => {
                for _ in 0..rng.random_range(1..6) {
                    out.push(rng.random_range(b'0'..=b'9'));
                }
                out.push(if rng.random_bool(0.5) { b',' } else { b' ' });
            }
            6 => out.extend_from_slice(b". "),
            _ => {
                // Keyword tokens are sparse (real traces are mostly filler);
                // dense keywords would park chunk boundaries inside rule
                // prefixes and confuse every speculation scheme equally.
                if !words.is_empty() && rng.random_bool(0.25) {
                    let w = &words[rng.random_range(0..words.len())];
                    out.extend_from_slice(w);
                    out.push(b' ');
                }
            }
        }
    }
    out.truncate(len);
    out
}

/// A stream dominated by bytes from `alphabet` (probability
/// `alphabet_ratio`), the rest drawn from foreign filler bytes. Feeding a
/// slow-retreat chain machine an alphabet-rich stream keeps its states
/// spread out at 2-byte range while still converging over a chunk.
pub fn chain_mix(seed: u64, len: usize, alphabet: &[u8], alphabet_ratio: f64) -> Vec<u8> {
    assert!(!alphabet.is_empty(), "alphabet must be non-empty");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0063_6861_696e);
    (0..len)
        .map(|_| {
            if rng.random_bool(alphabet_ratio) {
                alphabet[rng.random_range(0..alphabet.len())]
            } else {
                // Foreign filler outside the alphabet.
                let b = rng.random_range(b'0'..=b'9');
                if alphabet.contains(&b) {
                    b'~'
                } else {
                    b
                }
            }
        })
        .collect()
}

/// Letter stream for the sliding-window (Tier B) machines: the first four
/// bytes of `alphabet` carry `skew` of the probability mass (so
/// frequency-informed speculation covers roughly `skew` of boundaries with
/// four states), the remaining letters and a foreign filler share the rest.
pub fn window_text(seed: u64, len: usize, alphabet: &[u8], skew: f64) -> Vec<u8> {
    assert!(alphabet.len() >= 4, "need at least four alphabet letters");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7769_6e64_6f77);
    let tail: Vec<u8> = alphabet[4..].to_vec();
    (0..len)
        .map(|_| {
            if rng.random_bool(skew) {
                alphabet[rng.random_range(0..4)]
            } else {
                // Low-probability mass: remaining letters plus one foreign
                // byte, equally likely.
                let pick = rng.random_range(0..=tail.len());
                if pick < tail.len() {
                    tail[pick]
                } else {
                    b'#'
                }
            }
        })
        .collect()
}

/// Regime-switching stream: alternating segments from two generator
/// closures, producing the input-sensitive speculation behaviour of the
/// Table II column (prediction easy in one regime, hopeless in the other).
pub fn regime_switching(
    seed: u64,
    len: usize,
    segment_len: usize,
    mut easy: impl FnMut(u64, usize) -> Vec<u8>,
    mut hard: impl FnMut(u64, usize) -> Vec<u8>,
) -> Vec<u8> {
    assert!(segment_len > 0, "segments must be non-empty");
    let mut out = Vec::with_capacity(len + segment_len);
    let mut seg = 0u64;
    while out.len() < len {
        let part = if seg.is_multiple_of(2) {
            easy(seed ^ seg, segment_len)
        } else {
            hard(seed ^ seg, segment_len)
        };
        out.extend_from_slice(&part);
        seg += 1;
    }
    out.truncate(len);
    out
}

/// Byte-level statistics of a generated stream — used to pin the
/// generators' distributions in tests and reports.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InputStats {
    /// Fraction of printable-ASCII bytes.
    pub ascii_ratio: f64,
    /// Fraction of bytes with the high bit set (the binary-trigger class).
    pub high_bit_ratio: f64,
    /// Fraction of NUL bytes.
    pub zero_ratio: f64,
    /// Fraction of newline bytes.
    pub newline_ratio: f64,
    /// Fraction of ASCII digits.
    pub digit_ratio: f64,
}

/// Computes [`InputStats`] for a stream.
pub fn stats(bytes: &[u8]) -> InputStats {
    let n = bytes.len().max(1) as f64;
    let count = |f: fn(&u8) -> bool| bytes.iter().filter(|b| f(b)).count() as f64 / n;
    InputStats {
        ascii_ratio: count(|&b| (0x20..0x7f).contains(&b)),
        high_bit_ratio: count(|&b| b >= 0x80),
        zero_ratio: count(|&b| b == 0),
        newline_ratio: count(|&b| b == b'\n'),
        digit_ratio: count(|b| b.is_ascii_digit()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        let spice = vec![b"attack".to_vec()];
        assert_eq!(network_trace(7, 1000, &spice), network_trace(7, 1000, &spice));
        assert_eq!(executable_blob(7, 1000, &spice), executable_blob(7, 1000, &spice));
        assert_eq!(pattern_text(7, 1000, &spice), pattern_text(7, 1000, &spice));
        assert_ne!(network_trace(7, 1000, &spice), network_trace(8, 1000, &spice));
    }

    #[test]
    fn generators_hit_requested_length() {
        for len in [0usize, 1, 100, 4096] {
            assert_eq!(network_trace(1, len, &[]).len(), len);
            assert_eq!(executable_blob(1, len, &[]).len(), len);
            assert_eq!(pattern_text(1, len, &[]).len(), len);
            assert_eq!(chain_mix(1, len, b"abc", 0.8).len(), len);
        }
    }

    #[test]
    fn network_trace_contains_spice() {
        let spice = vec![b"EXPLOIT".to_vec()];
        let t = network_trace(3, 50_000, &spice);
        assert!(t.windows(7).any(|w| w == b"EXPLOIT"));
    }

    #[test]
    fn network_trace_has_binary_payloads() {
        let t = network_trace(3, 10_000, &[]);
        assert!(t.iter().any(|&b| b >= 0x80), "counter triggers present");
    }

    #[test]
    fn executable_blob_has_zero_runs() {
        let t = executable_blob(5, 10_000, &[]);
        assert!(t.windows(4).any(|w| w == [0, 0, 0, 0]));
    }

    #[test]
    fn chain_mix_respects_ratio() {
        let t = chain_mix(9, 10_000, b"abcdef", 0.9);
        let in_alpha = t.iter().filter(|b| b"abcdef".contains(b)).count();
        let ratio = in_alpha as f64 / t.len() as f64;
        assert!((0.85..=0.95).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn chain_mix_foreign_bytes_stay_foreign() {
        let t = chain_mix(9, 10_000, b"0123", 0.5);
        // Digits overlap the alphabet; fillers must have been remapped.
        for &b in &t {
            if !b"0123".contains(&b) {
                assert!(b == b'~' || (b'4'..=b'9').contains(&b));
            }
        }
    }

    #[test]
    fn generator_distributions_are_in_character() {
        // Network traffic: mixed ASCII and binary, with the binary bursts
        // that drive the Snort counters.
        let t = stats(&network_trace(1, 64 * 1024, &[]));
        assert!(t.high_bit_ratio > 0.1 && t.high_bit_ratio < 0.6, "{t:?}");
        assert!(t.ascii_ratio > 0.3, "{t:?}");
        // Executables: code bytes, zero padding, string fragments.
        let e = stats(&executable_blob(1, 64 * 1024, &[]));
        assert!(e.zero_ratio > 0.03, "{e:?}");
        assert!(e.high_bit_ratio > 0.2, "{e:?}");
        // PowerEN text: digits present (the counter triggers), no binary.
        let p = stats(&pattern_text(1, 64 * 1024, &[]));
        assert!(p.digit_ratio > 0.05, "{p:?}");
        assert!(p.high_bit_ratio < 0.01, "{p:?}");
    }

    #[test]
    fn window_text_skew_concentrates_on_hot_letters() {
        let alphabet = b"aeiostnr";
        let t = window_text(5, 64 * 1024, alphabet, 0.9);
        let hot = t.iter().filter(|b| alphabet[..4].contains(b)).count() as f64;
        let ratio = hot / t.len() as f64;
        assert!((0.87..0.93).contains(&ratio), "hot ratio {ratio}");
    }

    #[test]
    fn stats_of_empty_input_are_zero() {
        let s = stats(&[]);
        assert_eq!(s.ascii_ratio, 0.0);
        assert_eq!(s.high_bit_ratio, 0.0);
    }

    #[test]
    fn regime_switching_alternates() {
        let t = regime_switching(1, 100, 10, |_, n| vec![b'E'; n], |_, n| vec![b'H'; n]);
        assert_eq!(&t[0..10], &[b'E'; 10]);
        assert_eq!(&t[10..20], &[b'H'; 10]);
        assert_eq!(&t[20..30], &[b'E'; 10]);
        assert_eq!(t.len(), 100);
    }
}
