//! The 36-FSM benchmark suite (12 per family, §V-B).

use gspecpal_fsm::Dfa;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::family::Family;
use crate::inputs;
use crate::tiers::{build_tier_dfa, Tier};

/// One benchmark: a machine plus the recipe for its input stream.
#[derive(Clone, Debug)]
pub struct Benchmark {
    /// Which application the FSM models.
    pub family: Family,
    /// 1-based index within the family (`Snort3` = index 3).
    pub index: usize,
    /// Behavioural tier.
    pub tier: Tier,
    /// The compiled machine.
    pub dfa: Dfa,
    spice: Vec<Vec<u8>>,
    window_alphabet: Option<Vec<u8>>,
    skew: f64,
    seed: u64,
}

impl Benchmark {
    /// Display name matching the paper (`Snort1` … `PowerEN12`).
    pub fn name(&self) -> String {
        format!("{}{}", self.family, self.index)
    }

    /// A one-line description for logs and reports.
    pub fn describe(&self) -> String {
        format!(
            "{} [{}]: {} states, {} byte classes",
            self.name(),
            self.tier.name(),
            self.dfa.n_states(),
            self.dfa.alphabet_len()
        )
    }

    /// Generates this benchmark's input stream of `len` bytes. Twenty
    /// different streams per benchmark exist in the paper; pass a different
    /// `variant` to get independent draws.
    pub fn generate_input(&self, len: usize, variant: u64) -> Vec<u8> {
        let seed = self.seed ^ (variant.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        match self.tier {
            Tier::SlowConvergence => {
                let alphabet =
                    self.window_alphabet.as_deref().expect("window tier has an alphabet");
                inputs::window_text(seed, len, alphabet, self.skew)
            }
            Tier::InputSensitive => {
                // Segments must dwarf a chunk (so whole chunks sit inside one
                // regime) while the selector's spread-out boundary sampling
                // still sees several of each.
                let family = self.family;
                let segment = (len / 16).max(256);
                inputs::regime_switching(
                    seed,
                    len,
                    segment,
                    move |s, n| easy_regime(family, s, n),
                    move |s, n| hard_regime(family, s, n),
                )
            }
            _ => match self.family {
                Family::Snort => inputs::network_trace(seed, len, &self.spice),
                Family::ClamAV => inputs::executable_blob(seed, len, &self.spice),
                Family::PowerEn => inputs::pattern_text(seed, len, &self.spice),
            },
        }
    }
}

/// Reset-rich segment: prediction-friendly (the counter is pinned by
/// frequent reset bytes).
fn easy_regime(family: Family, seed: u64, len: usize) -> Vec<u8> {
    use rand::RngExt;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6561_7379);
    match family {
        // Short protocol lines: a newline every 2-4 bytes.
        Family::Snort => {
            let mut out = Vec::with_capacity(len);
            while out.len() < len {
                for _ in 0..rng.random_range(2..4) {
                    out.push(rng.random_range(b'a'..=b'z'));
                }
                out.push(b'\n');
            }
            out.truncate(len);
            out
        }
        // Zero-padding-dominated region of an executable.
        Family::ClamAV => (0..len)
            .map(|_| if rng.random_bool(0.5) { 0u8 } else { rng.random_range(b'A'..=b'Z') })
            .collect(),
        // Comma-dense CSV-ish numbers.
        Family::PowerEn => {
            let mut out = Vec::with_capacity(len);
            while out.len() < len {
                for _ in 0..rng.random_range(1..3) {
                    out.push(rng.random_range(b'0'..=b'9'));
                }
                out.push(b',');
            }
            out.truncate(len);
            out
        }
    }
}

/// Trigger-rich, reset-free segment: the counter churns and prediction is
/// hopeless beyond enumerating its phases.
fn hard_regime(family: Family, seed: u64, len: usize) -> Vec<u8> {
    use rand::RngExt;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6861_7264);
    match family {
        // Binary payload burst: high-bit bytes, no newlines.
        Family::Snort | Family::ClamAV => (0..len)
            .map(|_| {
                if rng.random_bool(0.4) {
                    rng.random_range(0x80..=0xff)
                } else {
                    rng.random_range(b'a'..=b'z')
                }
            })
            .collect(),
        // Digit runs without separators.
        Family::PowerEn => (0..len)
            .map(|_| {
                if rng.random_bool(0.5) {
                    rng.random_range(b'0'..=b'9')
                } else {
                    rng.random_range(b'a'..=b'z')
                }
            })
            .collect(),
    }
}

/// The tier of each family member (1-based index order), arranged to match
/// the paper's observations: PM wins the first couple of FSMs, SRE the next
/// pair, aggressive recovery the bulk, with the family's input-sensitive
/// quota at the tail (Table II / Fig 8 / Table III).
pub fn tier_layout(family: Family) -> [Tier; Family::FSMS_PER_FAMILY] {
    use Tier::*;
    match family {
        Family::Snort => [
            SpecKFriendly,
            SpecKFriendly,
            SlowConvergence,
            SlowConvergence,
            NonConvergent,
            NonConvergent,
            NonConvergent,
            NonConvergent,
            NonConvergent,
            InputSensitive,
            InputSensitive,
            InputSensitive,
        ],
        Family::ClamAV => [
            SpecKFriendly,
            SpecKFriendly,
            SpecKFriendly,
            SlowConvergence,
            SlowConvergence,
            NonConvergent,
            NonConvergent,
            InputSensitive,
            InputSensitive,
            InputSensitive,
            InputSensitive,
            InputSensitive,
        ],
        Family::PowerEn => [
            SpecKFriendly,
            SpecKFriendly,
            SlowConvergence,
            NonConvergent,
            NonConvergent,
            NonConvergent,
            InputSensitive,
            InputSensitive,
            InputSensitive,
            InputSensitive,
            InputSensitive,
            InputSensitive,
        ],
    }
}

/// Builds one family's 12 benchmarks.
pub fn build_family(family: Family, seed: u64) -> Vec<Benchmark> {
    tier_layout(family)
        .into_iter()
        .enumerate()
        .map(|(i, tier)| {
            let index = i + 1;
            let bench_seed =
                seed.wrapping_mul(0x100000001b3).wrapping_add((family as u64) << 32 | index as u64);
            let mut rng = StdRng::seed_from_u64(bench_seed);
            let m = build_tier_dfa(family, tier, &mut rng);
            Benchmark {
                family,
                index,
                tier,
                dfa: m.dfa,
                spice: m.spice,
                window_alphabet: m.window_alphabet,
                skew: m.skew,
                seed: bench_seed,
            }
        })
        .collect()
}

/// Builds the full 36-FSM suite.
///
/// ```
/// let suite = gspecpal_workloads::build_suite(1);
/// assert_eq!(suite.len(), 36);
/// let b = &suite[0];
/// let input = b.generate_input(4096, 0);
/// assert_eq!(input.len(), 4096);
/// ```
pub fn build_suite(seed: u64) -> Vec<Benchmark> {
    Family::all().into_iter().flat_map(|f| build_family(f, seed)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// Suite construction compiles 36 machines; share one across tests.
    fn suite1() -> &'static [Benchmark] {
        static SUITE: OnceLock<Vec<Benchmark>> = OnceLock::new();
        SUITE.get_or_init(|| build_suite(1))
    }

    #[test]
    fn suite_has_36_benchmarks() {
        let suite = suite1();
        assert_eq!(suite.len(), 36);
        for f in Family::all() {
            assert_eq!(suite.iter().filter(|b| b.family == f).count(), 12);
        }
    }

    #[test]
    fn input_sensitive_quotas_match_table2() {
        let suite = suite1();
        for f in Family::all() {
            let n =
                suite.iter().filter(|b| b.family == f && b.tier == Tier::InputSensitive).count();
            assert_eq!(n, f.input_sensitive_quota(), "{f}");
        }
    }

    #[test]
    fn suite_is_deterministic_in_seed() {
        let a = build_suite(7);
        let b = build_suite(7);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.dfa.n_states(), y.dfa.n_states());
            assert_eq!(x.generate_input(2048, 0), y.generate_input(2048, 0));
        }
        let c = build_suite(8);
        assert!(a.iter().zip(&c).any(|(x, y)| x.dfa.n_states() != y.dfa.n_states()
            || x.generate_input(2048, 0) != y.generate_input(2048, 0)));
    }

    #[test]
    fn input_variants_differ() {
        let suite = suite1();
        let b = &suite[0];
        assert_ne!(b.generate_input(4096, 0), b.generate_input(4096, 1));
    }

    #[test]
    fn benchmarks_fire_matches_on_their_inputs() {
        // Signature-bearing benchmarks should actually match their streams.
        let suite = suite1();
        for b in suite.iter().filter(|b| b.tier == Tier::SpecKFriendly) {
            let input = b.generate_input(64 * 1024, 0);
            assert!(b.dfa.count_matches(&input) > 0, "{} never fires", b.name());
        }
    }

    #[test]
    fn describe_mentions_name_and_tier() {
        let b = &suite1()[0];
        let d = b.describe();
        assert!(d.contains("Snort1"));
        assert!(d.contains("spec-k"));
        assert!(d.contains("states"));
    }

    #[test]
    fn names_match_paper_style() {
        let suite = suite1();
        assert_eq!(suite[0].name(), "Snort1");
        assert_eq!(suite[12].name(), "ClamAV1");
        assert_eq!(suite[35].name(), "PowerEN12");
    }

    #[test]
    fn state_counts_follow_family_ordering() {
        let suite = suite1();
        let mean = |f: Family| {
            let v: Vec<u32> =
                suite.iter().filter(|b| b.family == f).map(|b| b.dfa.n_states()).collect();
            v.iter().sum::<u32>() as f64 / v.len() as f64
        };
        assert!(mean(Family::Snort) > mean(Family::PowerEn));
        assert!(mean(Family::ClamAV) > mean(Family::PowerEn));
    }
}
