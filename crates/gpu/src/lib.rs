//! Deterministic SIMT GPU cost-model simulator.
//!
//! This crate is the reproduction's substitute for the paper's Nvidia GeForce
//! RTX 3090 (§V-A). The schemes in `gspecpal` are written as *round-based
//! kernels*: a kernel is a sequence of barrier-delimited rounds, exactly the
//! `while … { …; sync(); }` shape of the paper's Algorithms 3-5. The
//! simulator steps every thread through each round, charges cycles for every
//! ALU operation and memory access, models warp-level coalescing of global
//! memory transactions, and merges per-thread clocks at each barrier the way
//! real hardware serializes on `__syncthreads()`.
//!
//! What is modelled (because the paper's results depend on it):
//!
//! * **shared vs. global latency** — the §IV-B hot-table optimization;
//! * **coalescing / broadcast of warp global loads** — the Fig 9 locality
//!   advantage of NF over RR;
//! * **barrier-aligned round time = max over threads** — warp divergence at
//!   chunk granularity, and why a single must-be-done recovery stalls a
//!   whole verification round;
//! * **per-round active-thread counts** — Table III's utilization metric.
//!
//! Kernels scale past one block through the grid layer: [`launch_grid`]
//! partitions a [`GridKernel`]'s threads into blocks of
//! `max_threads_per_block`, simulates the blocks concurrently on host
//! worker threads, and merges their statistics under the SM-occupancy wave
//! model — so multi-block scheduling *is* modelled, at block granularity.
//!
//! What is deliberately not modelled: instruction-level warp divergence,
//! DRAM banking, L2, and intra-wave block preemption — none of which the
//! paper's analysis (§III-C) depends on. All counts are deterministic
//! (including across host worker counts), so every experiment in
//! EXPERIMENTS.md reproduces bit-for-bit.

#![warn(missing_docs)]

pub mod error;
pub mod event;
pub mod fault;
pub mod grid;
pub mod kernel;
pub mod occupancy;
pub mod spec;
pub mod stats;
pub mod transfer;

pub use error::LaunchError;
pub use event::{EventTimer, KernelSpan};
pub use fault::{backoff_cycles, fault_coord, FaultDomain, FaultPlan};
pub use grid::{
    block_dims, block_dims_width, launch_blocks, launch_blocks_auto, launch_blocks_occupancy,
    launch_grid, try_launch_blocks_auto, try_launch_blocks_occupancy, try_launch_grid,
    try_launch_grid_detailed, try_launch_grid_unfolded, BlockDim, GridKernel, GridLaunch,
    GridStats,
};
pub use kernel::{launch, RoundKernel, RoundOutcome, ThreadCtx};
pub use occupancy::{fit_block_width, max_resident_blocks, occupancy, BlockRequirements};
pub use spec::{DeviceSpec, LinkSpec};
pub use stats::{KernelStats, LaunchShape, Phase, PhaseCounters, PhaseProfile};
pub use transfer::{
    link_transfer_stats, transfer_stats, CopyDirection, DeviceTimeline, Engine, Span,
};
