//! Device descriptions.

/// Cost parameters of a simulated GPU.
///
/// Latencies are *amortized issue costs* in cycles, not raw pipeline depths:
/// resident warps hide most raw latency, so what a throughput model needs is
/// the effective per-access cost ratios. The defaults follow public Ampere
/// microbenchmark ratios (shared ≈ 20× cheaper than an uncoalesced global
/// access); the paper's experiments all report normalized quantities, so only
/// these ratios matter for reproducing its figures.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceSpec {
    /// Marketing name, for reports.
    pub name: &'static str,
    /// Number of streaming multiprocessors.
    pub n_sms: u32,
    /// CUDA cores per SM.
    pub cores_per_sm: u32,
    /// Shared memory available to a thread block, in bytes.
    pub shared_mem_bytes: usize,
    /// Threads per warp.
    pub warp_size: u32,
    /// Maximum threads in one block.
    pub max_threads_per_block: u32,
    /// Maximum threads resident on one SM.
    pub max_threads_per_sm: u32,
    /// 32-bit registers in one SM's register file.
    pub registers_per_sm: u32,
    /// Hardware cap on resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Cycles per shared-memory access.
    pub shared_latency: u64,
    /// Cycles per global-memory *transaction* (one coalesced segment).
    pub global_latency: u64,
    /// Bytes per global transaction segment (coalescing granularity).
    pub global_segment_bytes: u64,
    /// Cycles per ALU op.
    pub alu_latency: u64,
    /// Cycles for a warp shuffle / thread-communication step.
    pub shuffle_latency: u64,
    /// Cycles consumed by a block-wide barrier.
    pub barrier_latency: u64,
    /// Cycles for an atomic RMW on shared memory.
    pub atomic_latency: u64,
    /// Effective extra cycles of a shared-memory hash-table probe that
    /// precedes a row access (PM's cached-row test, §IV-B). Banked shared
    /// memory lets the probe pipeline with the following row fetch, so the
    /// *additional* latency is below a standalone shared access.
    pub hash_probe_latency: u64,
    /// Memory-bandwidth roofline: issue cost per global transaction in
    /// *milli-cycles*. A round's wall time is at least
    /// `transactions_issued × bandwidth_millicycles_per_txn / 1000`,
    /// modelling the contention the paper observes when many threads recover
    /// concurrently (Fig 9). The default reflects a single resident block's
    /// share of an SM's load/store throughput.
    pub bandwidth_millicycles_per_txn: u64,
    /// Fixed cost of one host↔device copy in core cycles: DMA descriptor
    /// setup, PCIe round trip, and driver launch overhead. Charged once per
    /// copy regardless of size, which is why serving pipelines batch small
    /// streams instead of copying them one by one.
    pub copy_latency_cycles: u64,
    /// Streaming cost of a host↔device copy in *milli-cycles per byte* at
    /// the core clock. The RTX 3090 default models PCIe 4.0 ×16 (~25 GB/s
    /// effective): at 1.695 GHz that is ~14.7 bytes per core cycle, i.e.
    /// 68 mcyc/B. Copy engines (one per direction) run concurrently with
    /// compute, so these cycles only bound the copy queues — unless a
    /// pipeline serializes them (see `gspecpal-serve`).
    pub copy_millicycles_per_byte: u64,
    /// Independent DMA engines. Ampere GeForce parts expose two (one per
    /// direction), which is what makes copy/compute overlap and
    /// double-buffered serving possible.
    pub copy_engines: u32,
    /// Core clock in GHz, to convert cycles to wall time for reports.
    pub clock_ghz: f64,
}

impl DeviceSpec {
    /// The paper's evaluation platform (§V-A): GeForce RTX 3090, Ampere —
    /// 82 SMs × 128 cores, 100 KB shared memory per SM, warp size 32.
    pub fn rtx3090() -> Self {
        DeviceSpec {
            name: "GeForce RTX 3090 (simulated)",
            n_sms: 82,
            cores_per_sm: 128,
            shared_mem_bytes: 100 * 1024,
            warp_size: 32,
            max_threads_per_block: 1024,
            max_threads_per_sm: 1536,
            registers_per_sm: 65_536,
            max_blocks_per_sm: 16,
            shared_latency: 2,
            global_latency: 36,
            global_segment_bytes: 32,
            alu_latency: 1,
            shuffle_latency: 4,
            barrier_latency: 8,
            atomic_latency: 12,
            hash_probe_latency: 1,
            bandwidth_millicycles_per_txn: 600,
            copy_latency_cycles: 3000,
            copy_millicycles_per_byte: 68,
            copy_engines: 2,
            clock_ghz: 1.695,
        }
    }

    /// An NVIDIA A100 (Ampere, SXM): 108 SMs, 164 KB shared memory per SM
    /// configurable to the block, wider register files — the data-center
    /// sibling of the paper's RTX 3090. Included to check that the
    /// reproduction's conclusions are not artifacts of one device shape.
    pub fn a100() -> Self {
        DeviceSpec {
            name: "A100-SXM (simulated)",
            n_sms: 108,
            cores_per_sm: 64,
            shared_mem_bytes: 164 * 1024,
            warp_size: 32,
            max_threads_per_block: 1024,
            max_threads_per_sm: 2048,
            registers_per_sm: 65_536,
            max_blocks_per_sm: 32,
            shared_latency: 2,
            global_latency: 33,
            global_segment_bytes: 32,
            alu_latency: 1,
            shuffle_latency: 4,
            barrier_latency: 8,
            atomic_latency: 12,
            hash_probe_latency: 1,
            bandwidth_millicycles_per_txn: 450,
            // SXM parts ride NVLink/PCIe 4.0; the effective host link is
            // similar per direction, at a slower core clock.
            copy_latency_cycles: 2500,
            copy_millicycles_per_byte: 56,
            copy_engines: 2,
            clock_ghz: 1.41,
        }
    }

    /// A Tesla T4-class part (Turing, inference SKU): 40 SMs, 64 KB shared
    /// memory per SM, a PCIe 3.0 ×16 host link (~12 GB/s effective — about
    /// half the RTX 3090's PCIe 4.0 bandwidth). The small device in a
    /// heterogeneous fleet: fewer SMs and less shared memory mean lower
    /// occupancy targets and fewer hot rows, and the slower link makes
    /// transfer charging (and table-residency misses) proportionally more
    /// expensive.
    pub fn t4() -> Self {
        DeviceSpec {
            name: "Tesla T4 (simulated)",
            n_sms: 40,
            cores_per_sm: 64,
            shared_mem_bytes: 64 * 1024,
            warp_size: 32,
            max_threads_per_block: 1024,
            max_threads_per_sm: 1024,
            registers_per_sm: 65_536,
            max_blocks_per_sm: 16,
            shared_latency: 2,
            global_latency: 40,
            global_segment_bytes: 32,
            alu_latency: 1,
            shuffle_latency: 4,
            barrier_latency: 8,
            atomic_latency: 12,
            hash_probe_latency: 1,
            bandwidth_millicycles_per_txn: 900,
            // PCIe 3.0 ×16 at ~12 GB/s effective: at 1.59 GHz that is
            // ~7.5 bytes per core cycle, i.e. 132 mcyc/B, with a longer
            // per-copy setup than the desktop Ampere part.
            copy_latency_cycles: 3500,
            copy_millicycles_per_byte: 132,
            copy_engines: 2,
            clock_ghz: 1.59,
        }
    }

    /// A tiny device for unit tests: everything costs 1 cycle and segments
    /// are 4 bytes, so expected counts are easy to compute by hand.
    pub fn test_unit() -> Self {
        DeviceSpec {
            name: "unit-test device",
            n_sms: 1,
            cores_per_sm: 32,
            shared_mem_bytes: 16 * 1024,
            warp_size: 4,
            max_threads_per_block: 64,
            max_threads_per_sm: 128,
            registers_per_sm: 4096,
            max_blocks_per_sm: 4,
            shared_latency: 1,
            global_latency: 1,
            global_segment_bytes: 4,
            alu_latency: 1,
            shuffle_latency: 1,
            barrier_latency: 1,
            atomic_latency: 1,
            hash_probe_latency: 1,
            bandwidth_millicycles_per_txn: 0,
            // 1 cycle of setup + 1 cycle per byte: copy costs are trivial to
            // compute by hand in tests (`copy_cycles(n) == 1 + n`).
            copy_latency_cycles: 1,
            copy_millicycles_per_byte: 1000,
            copy_engines: 2,
            clock_ghz: 1.0,
        }
    }

    /// Converts cycles to microseconds at this device's clock.
    pub fn cycles_to_us(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.clock_ghz * 1e3)
    }

    /// Core cycles one host↔device copy of `bytes` bytes occupies its copy
    /// engine for: the fixed per-copy latency plus the streaming cost
    /// (`copy_millicycles_per_byte`, rounded up). A zero-byte copy still
    /// pays the setup latency — exactly the overhead batching amortizes.
    pub fn copy_cycles(&self, bytes: usize) -> u64 {
        self.copy_latency_cycles + (bytes as u64 * self.copy_millicycles_per_byte).div_ceil(1000)
    }
}

/// Cost parameters of one inter-device link — the fabric a fleet migrates
/// transition tables and stream state over when it rebalances shards.
///
/// The model mirrors [`DeviceSpec::copy_cycles`]: a fixed per-transfer
/// setup latency plus a streaming cost in milli-cycles per byte, all in
/// integer cycles on the fleet clock so link charging stays bit-exact. A
/// transfer between two devices is governed by the *slower* of their
/// attach links (the bytes traverse both).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinkSpec {
    /// Fabric name, for reports.
    pub name: &'static str,
    /// Fixed cost of one transfer over the link, in cycles: route setup,
    /// handshake, and (for host-mediated fabrics) the bounce buffer.
    pub latency_cycles: u64,
    /// Streaming cost in milli-cycles per byte at the fleet clock.
    pub millicycles_per_byte: u64,
}

impl LinkSpec {
    /// NVLink 3.0 (A100 generation): ~300 GB/s per direction. At a
    /// ~1.4 GHz core clock that is ~213 bytes per cycle, i.e. 5 mcyc/B,
    /// with a short setup.
    pub fn nvlink3() -> Self {
        LinkSpec { name: "nvlink3", latency_cycles: 700, millicycles_per_byte: 5 }
    }

    /// PCIe 4.0 ×16 (~25 GB/s effective) — matches the RTX 3090's host
    /// link parameters, but as a peer fabric (transfers bounce through
    /// host memory, hence the higher setup cost).
    pub fn pcie4() -> Self {
        LinkSpec { name: "pcie4", latency_cycles: 6000, millicycles_per_byte: 68 }
    }

    /// PCIe 3.0 ×16 (~12 GB/s effective) — the T4-class attach.
    pub fn pcie3() -> Self {
        LinkSpec { name: "pcie3", latency_cycles: 7000, millicycles_per_byte: 132 }
    }

    /// A trivial link for unit tests: `copy_cycles(n) == 1 + n`.
    pub fn test_unit() -> Self {
        LinkSpec { name: "unit-test link", latency_cycles: 1, millicycles_per_byte: 1000 }
    }

    /// Cycles one transfer of `bytes` bytes occupies the link for.
    pub fn copy_cycles(&self, bytes: usize) -> u64 {
        self.latency_cycles + (bytes as u64 * self.millicycles_per_byte).div_ceil(1000)
    }

    /// The governing link of a transfer that traverses both `self` and
    /// `other`: whichever would take longer end to end for this size.
    pub fn slower_of<'a>(&'a self, other: &'a LinkSpec, bytes: usize) -> &'a LinkSpec {
        if self.copy_cycles(bytes) >= other.copy_cycles(bytes) {
            self
        } else {
            other
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtx3090_matches_paper_specs() {
        let d = DeviceSpec::rtx3090();
        assert_eq!(d.n_sms, 82);
        assert_eq!(d.cores_per_sm, 128);
        assert_eq!(d.shared_mem_bytes, 100 * 1024);
        assert_eq!(d.warp_size, 32);
    }

    #[test]
    fn shared_is_much_cheaper_than_global() {
        let d = DeviceSpec::rtx3090();
        assert!(d.global_latency >= 10 * d.shared_latency);
    }

    #[test]
    fn a100_has_more_shared_memory_than_rtx3090() {
        let a = DeviceSpec::a100();
        let r = DeviceSpec::rtx3090();
        assert!(a.shared_mem_bytes > r.shared_mem_bytes);
        assert!(a.n_sms > r.n_sms);
    }

    #[test]
    fn cycle_conversion() {
        let d = DeviceSpec::test_unit();
        assert!((d.cycles_to_us(1000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn copy_cycles_are_latency_plus_bandwidth() {
        let d = DeviceSpec::test_unit();
        assert_eq!(d.copy_cycles(0), 1, "empty copies still pay the setup latency");
        assert_eq!(d.copy_cycles(1), 2);
        assert_eq!(d.copy_cycles(4096), 1 + 4096);
    }

    #[test]
    fn rtx3090_copy_bandwidth_matches_pcie4() {
        // ~68 mcyc/B at 1.695 GHz is ~25 GB/s — PCIe 4.0 ×16 effective.
        let d = DeviceSpec::rtx3090();
        let bytes = 1 << 20;
        let cycles = d.copy_cycles(bytes) - d.copy_latency_cycles;
        let gb_per_s = bytes as f64 / (cycles as f64 / (d.clock_ghz * 1e9)) / 1e9;
        assert!((20.0..30.0).contains(&gb_per_s), "{gb_per_s} GB/s");
        assert_eq!(d.copy_engines, 2);
    }

    #[test]
    fn t4_is_the_small_fleet_device() {
        let t = DeviceSpec::t4();
        let r = DeviceSpec::rtx3090();
        assert!(t.n_sms < r.n_sms, "fewer SMs than the desktop part");
        assert!(t.shared_mem_bytes < r.shared_mem_bytes, "less shared memory");
        assert!(
            t.copy_millicycles_per_byte > r.copy_millicycles_per_byte,
            "slower host link (PCIe 3.0 vs 4.0)"
        );
    }

    #[test]
    fn t4_copy_bandwidth_matches_pcie3() {
        // ~132 mcyc/B at 1.59 GHz is ~12 GB/s — PCIe 3.0 ×16 effective.
        let d = DeviceSpec::t4();
        let bytes = 1 << 20;
        let cycles = d.copy_cycles(bytes) - d.copy_latency_cycles;
        let gb_per_s = bytes as f64 / (cycles as f64 / (d.clock_ghz * 1e9)) / 1e9;
        assert!((9.0..15.0).contains(&gb_per_s), "{gb_per_s} GB/s");
    }

    #[test]
    fn link_copy_cycles_are_latency_plus_bandwidth() {
        let l = LinkSpec::test_unit();
        assert_eq!(l.copy_cycles(0), 1);
        assert_eq!(l.copy_cycles(4096), 1 + 4096);
    }

    #[test]
    fn nvlink_beats_pcie_and_the_slower_link_governs() {
        let nv = LinkSpec::nvlink3();
        let p4 = LinkSpec::pcie4();
        let p3 = LinkSpec::pcie3();
        let bytes = 1 << 20;
        assert!(nv.copy_cycles(bytes) < p4.copy_cycles(bytes));
        assert!(p4.copy_cycles(bytes) < p3.copy_cycles(bytes));
        assert_eq!(nv.slower_of(&p3, bytes).name, "pcie3");
        assert_eq!(p3.slower_of(&nv, bytes).name, "pcie3");
    }
}
