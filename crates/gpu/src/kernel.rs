//! Round-based kernel execution.
//!
//! A [`RoundKernel`] describes what each thread does between two consecutive
//! block-wide barriers. The launcher steps every thread through the current
//! round (grouped by warp so coalescing can be modelled), merges the
//! per-thread clocks at the barrier — round time is the *maximum* thread
//! time, exactly like `__syncthreads()` — then asks the kernel whether
//! another round follows.
//!
//! Threads run sequentially inside the simulator, so kernels are free to
//! mutate their own shared state from `round`; it is the kernel author's
//! responsibility to preserve lockstep semantics where the algorithm needs
//! them (e.g. by double-buffering values that are "communicated" across the
//! barrier), just as it would be on real hardware.

use std::cell::RefCell;

use crate::spec::DeviceSpec;
use crate::stats::{KernelStats, Phase};

/// A warp's coalescing window: the set of `(region, segment)` pairs touched
/// since the last barrier.
///
/// Semantically this is exactly `HashSet<(u32, u64)>::insert`, but shaped
/// for the simulator's hottest loop (every global access of every thread of
/// every round goes through it): open addressing with linear probing in a
/// power-of-two table, a multiply-shift hash instead of SipHash, and
/// generation-stamped slots so `clear` is a counter bump rather than a
/// table walk. Only membership is ever queried — the set is never iterated
/// — so the table layout cannot influence any simulated count.
pub(crate) struct SegmentWindow {
    /// `(segment, region)` per slot; live iff the slot's stamp matches.
    keys: Vec<(u64, u32)>,
    /// Slot generation stamps: `stamps[i] == gen` marks a live entry.
    stamps: Vec<u64>,
    gen: u64,
    len: usize,
}

impl SegmentWindow {
    /// Starting capacity; a power of two, sized for a warp's typical
    /// footprint (table rows + input segments) without growth.
    const MIN_CAPACITY: usize = 64;

    pub(crate) fn new() -> Self {
        SegmentWindow {
            keys: vec![(0, 0); Self::MIN_CAPACITY],
            stamps: vec![0; Self::MIN_CAPACITY],
            // Stamps start at 0, so the live generation starts at 1.
            gen: 1,
            len: 0,
        }
    }

    #[inline]
    fn hash(region: u32, seg: u64) -> u64 {
        let mut h = seg.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= u64::from(region).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
        h ^= h >> 29;
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^ (h >> 32)
    }

    /// Inserts `(region, seg)`; returns `true` iff it was not yet present —
    /// the same contract as `HashSet::insert`.
    #[inline]
    pub(crate) fn insert(&mut self, region: u32, seg: u64) -> bool {
        // Keep load below 7/8 so linear probes stay short.
        if (self.len + 1) * 8 > self.keys.len() * 7 {
            self.grow();
        }
        let mask = self.keys.len() - 1;
        let mut i = (Self::hash(region, seg) as usize) & mask;
        loop {
            if self.stamps[i] != self.gen {
                self.stamps[i] = self.gen;
                self.keys[i] = (seg, region);
                self.len += 1;
                return true;
            }
            if self.keys[i] == (seg, region) {
                return false;
            }
            i = (i + 1) & mask;
        }
    }

    fn grow(&mut self) {
        let live: Vec<(u64, u32)> = self
            .keys
            .iter()
            .zip(&self.stamps)
            .filter(|&(_, &s)| s == self.gen)
            .map(|(&k, _)| k)
            .collect();
        let cap = self.keys.len() * 2;
        self.keys = vec![(0, 0); cap];
        self.stamps = vec![0; cap];
        self.gen = 1;
        self.len = 0;
        for (seg, region) in live {
            self.insert(region, seg);
        }
    }

    /// Empties the window. O(1): live entries are whatever matches the new
    /// generation, i.e. nothing.
    #[inline]
    pub(crate) fn clear(&mut self) {
        self.gen += 1;
        self.len = 0;
    }
}

/// Per-block simulation scratch, reused across blocks and waves on each
/// host worker thread: a grid launch runs thousands of blocks, and
/// reallocating clocks and warp windows per block dominated the host-side
/// cost of small kernels.
#[derive(Default)]
struct BlockScratch {
    clocks: Vec<u64>,
    windows: Vec<SegmentWindow>,
}

impl Default for SegmentWindow {
    fn default() -> Self {
        SegmentWindow::new()
    }
}

thread_local! {
    static BLOCK_SCRATCH: RefCell<BlockScratch> = RefCell::new(BlockScratch::default());
}

/// What a thread reports at the end of its round.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundOutcome {
    /// The thread did useful work this round (false = idle).
    pub active: bool,
    /// The thread (re-)executed chunk work as part of verification/recovery.
    /// Feeds the Table III utilization metric.
    pub recovering: bool,
}

impl RoundOutcome {
    /// An idle thread.
    pub const IDLE: RoundOutcome = RoundOutcome { active: false, recovering: false };
    /// A thread doing non-recovery work.
    pub const ACTIVE: RoundOutcome = RoundOutcome { active: true, recovering: false };
    /// A thread doing recovery work.
    pub const RECOVERING: RoundOutcome = RoundOutcome { active: true, recovering: true };
}

/// Per-thread execution context handed to [`RoundKernel::round`].
///
/// All cost-charging goes through this: the kernel calls the access methods
/// and the simulator accumulates cycles on the thread's clock and counters in
/// [`KernelStats`].
pub struct ThreadCtx<'a> {
    /// This thread's global id (block base + lane for grid launches; equal
    /// to the in-block id for single-block launches).
    pub tid: usize,
    spec: &'a DeviceSpec,
    clock: u64,
    stats: &'a mut KernelStats,
    window: &'a mut SegmentWindow,
}

impl<'a> ThreadCtx<'a> {
    /// The device being simulated.
    pub fn spec(&self) -> &DeviceSpec {
        self.spec
    }

    /// This thread's clock (cycles since kernel start).
    pub fn cycles(&self) -> u64 {
        self.clock
    }

    /// Charges `n` ALU operations.
    #[inline]
    pub fn alu(&mut self, n: u64) {
        self.clock += n * self.spec.alu_latency;
        self.stats.alu_ops += n;
    }

    /// Charges `n` shared-memory accesses (loads and stores cost the same).
    #[inline]
    pub fn shared(&mut self, n: u64) {
        self.clock += n * self.spec.shared_latency;
        self.stats.shared_accesses += n;
    }

    /// Charges a global-memory access of `bytes` bytes at `offset` within
    /// memory region `region`.
    ///
    /// Coalescing: accesses are grouped into segments of
    /// `global_segment_bytes`. The first access to a segment by any thread of
    /// this warp in the current round pays a full transaction; subsequent
    /// accesses to the same segment hit the L1/broadcast path, which shares
    /// storage with shared memory on Ampere and costs the same as a shared
    /// access. This is what makes Nearest-First's same-chunk scheduling
    /// cheap (Fig 9) and what amortizes streaming input reads — while
    /// keeping a cached global row no cheaper than a resident shared row.
    #[inline]
    pub fn global(&mut self, region: u32, offset: u64, bytes: u64) {
        let seg_size = self.spec.global_segment_bytes;
        let first = offset / seg_size;
        let last = (offset + bytes.max(1) - 1) / seg_size;
        for seg in first..=last {
            if self.window.insert(region, seg) {
                self.clock += self.spec.global_latency;
                self.stats.global_transactions += 1;
            } else {
                self.clock += self.spec.shared_latency;
                self.stats.global_coalesced_hits += 1;
            }
        }
    }

    /// Charges one shared-memory hash-table probe (counted as a shared
    /// access; latency pipelines with the access it guards).
    #[inline]
    pub fn probe(&mut self) {
        self.clock += self.spec.hash_probe_latency;
        self.stats.shared_accesses += 1;
    }

    /// Charges `n` warp shuffles (register-to-register thread communication,
    /// the `end_state_comm` of Algorithm 3).
    #[inline]
    pub fn shuffle(&mut self, n: u64) {
        self.clock += n * self.spec.shuffle_latency;
        self.stats.shuffles += n;
    }

    /// Charges `n` atomic operations (the concurrent speculation queue).
    #[inline]
    pub fn atomic(&mut self, n: u64) {
        self.clock += n * self.spec.atomic_latency;
        self.stats.atomics += n;
    }

    /// Records that the cycles spent since `start_cycles` were chunk
    /// re-execution (recovery) work; increments the recovery-run counter.
    pub fn credit_recovery(&mut self, start_cycles: u64) {
        self.stats.recovery_cycles += self.clock.saturating_sub(start_cycles);
        self.stats.recovery_runs += 1;
    }
}

/// A kernel expressed as barrier-delimited rounds.
pub trait RoundKernel {
    /// Executes thread `tid`'s work for the current round.
    fn round(&mut self, tid: usize, ctx: &mut ThreadCtx<'_>) -> RoundOutcome;

    /// Called once after each barrier with the index of the round that just
    /// completed; return `true` to run another round. Kernel-global control
    /// flow (the frontier advance of Algorithms 3-5) lives here.
    fn after_sync(&mut self, completed_round: u64) -> bool;

    /// Per-block resource requirements when this kernel runs `threads`
    /// threads in one block. The default is the light shape (32 registers,
    /// no shared memory); kernels with real shared-memory or register
    /// footprints (hot tables, record windows, speculation queues) override
    /// this so the grid scheduler sizes its waves honestly — see
    /// [`crate::occupancy::max_resident_blocks`].
    fn requirements(&self, threads: u32) -> crate::occupancy::BlockRequirements {
        crate::occupancy::BlockRequirements::light(threads)
    }

    /// The [`Phase`] the *current* round belongs to. Queried once per round
    /// at the barrier, **before** [`RoundKernel::after_sync`] runs — so a
    /// kernel whose state machine flips phases in `after_sync` (the VR
    /// verify/recover loop) reports the phase of the round that just
    /// executed. Defaults to [`Phase::SpecExec`], the right answer for plain
    /// forward scans.
    fn phase(&self) -> Phase {
        Phase::SpecExec
    }
}

/// Safety valve: a kernel that runs this many rounds is assumed stuck.
pub const DEFAULT_MAX_ROUNDS: u64 = 1 << 22;

/// Launches `kernel` with `n_threads` threads in one block and runs it to
/// completion, returning the collected statistics.
///
/// ```
/// use gspecpal_gpu::{launch, DeviceSpec, RoundKernel, RoundOutcome, ThreadCtx};
///
/// /// Every thread does ten ALU ops in a single round.
/// struct Burn;
/// impl RoundKernel for Burn {
///     fn round(&mut self, _tid: usize, ctx: &mut ThreadCtx<'_>) -> RoundOutcome {
///         ctx.alu(10);
///         RoundOutcome::ACTIVE
///     }
///     fn after_sync(&mut self, _round: u64) -> bool { false }
/// }
///
/// let spec = DeviceSpec::test_unit();
/// let stats = launch(&spec, 8, &mut Burn);
/// assert_eq!(stats.alu_ops, 80);
/// assert_eq!(stats.rounds, 1);
/// ```
///
/// Panics if `n_threads` exceeds the device's block capacity or if the
/// kernel exceeds `DEFAULT_MAX_ROUNDS` rounds (which indicates a bug in the
/// kernel's termination logic, the moral equivalent of a hung GPU). Wider
/// launches go through [`crate::grid::launch_grid`], which partitions the
/// threads into blocks of this size and runs them as a grid.
pub fn launch<K: RoundKernel>(spec: &DeviceSpec, n_threads: usize, kernel: &mut K) -> KernelStats {
    assert!(
        n_threads <= spec.max_threads_per_block as usize,
        "{n_threads} threads exceed the block capacity of {}; use launch_grid",
        spec.max_threads_per_block
    );
    run_block(spec, 0, n_threads, kernel)
}

/// Simulates one block whose threads carry *global* ids
/// `tid_base .. tid_base + n_threads`. This is the primitive behind both
/// [`launch`] (`tid_base = 0`) and the multi-block grid launcher; warps,
/// coalescing windows, and barriers are all block-local, exactly as on
/// hardware.
pub(crate) fn run_block<K: RoundKernel + ?Sized>(
    spec: &DeviceSpec,
    tid_base: usize,
    n_threads: usize,
    kernel: &mut K,
) -> KernelStats {
    BLOCK_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => run_block_in(spec, tid_base, n_threads, kernel, &mut scratch),
        // A kernel that launches nested blocks from inside `round` re-enters
        // this worker's scratch; give the inner launch its own rather than
        // aliasing the outer block's state.
        Err(_) => run_block_in(spec, tid_base, n_threads, kernel, &mut BlockScratch::default()),
    })
}

fn run_block_in<K: RoundKernel + ?Sized>(
    spec: &DeviceSpec,
    tid_base: usize,
    n_threads: usize,
    kernel: &mut K,
    scratch: &mut BlockScratch,
) -> KernelStats {
    assert!(n_threads > 0, "kernel needs at least one thread");
    let warp = spec.warp_size as usize;
    let n_warps = n_threads.div_ceil(warp);
    let BlockScratch { clocks, windows } = scratch;
    clocks.clear();
    clocks.resize(n_threads, 0);
    while windows.len() < n_warps {
        windows.push(SegmentWindow::new());
    }
    let mut stats = KernelStats::default();

    let mut round = 0u64;
    loop {
        assert!(round < DEFAULT_MAX_ROUNDS, "kernel exceeded {DEFAULT_MAX_ROUNDS} rounds");
        let round_start = clocks.first().copied().unwrap_or(0);
        let txns_before = stats.global_transactions;
        let coalesced_before = stats.global_coalesced_hits;
        let shared_before = stats.shared_accesses;
        let alu_before = stats.alu_ops;
        let shuffles_before = stats.shuffles;
        let atomics_before = stats.atomics;
        let mut active = 0u32;
        let mut recovering = 0u32;
        // Indexing is deliberate: each warp's window is reused across its
        // threads' contexts, and clocks are written back per thread.
        #[allow(clippy::needless_range_loop)]
        for w in 0..n_warps {
            windows[w].clear();
            let lo = w * warp;
            let hi = ((w + 1) * warp).min(n_threads);
            for tid in lo..hi {
                let mut ctx = ThreadCtx {
                    tid: tid_base + tid,
                    spec,
                    clock: clocks[tid],
                    stats: &mut stats,
                    window: &mut windows[w],
                };
                let outcome = kernel.round(tid_base + tid, &mut ctx);
                clocks[tid] = ctx.clock;
                active += u32::from(outcome.active);
                recovering += u32::from(outcome.recovering);
            }
        }
        // Barrier: everyone waits for the slowest thread — or for the memory
        // system, whichever binds (bandwidth roofline: concurrent recoveries
        // contend for global memory, the Fig 9 effect).
        let compute_max = clocks.iter().copied().max().unwrap_or(0);
        let bw_floor = round_start
            + (stats.global_transactions - txns_before) * spec.bandwidth_millicycles_per_txn / 1000;
        let max = compute_max.max(bw_floor) + spec.barrier_latency;
        clocks.fill(max);
        stats.rounds += 1;
        stats.active_per_round.push(active);
        stats.recovering_per_round.push(recovering);
        stats.round_durations.push(max - round_start);
        // Attribute the whole round — duration, traffic deltas, divergence —
        // to the kernel's current phase, *before* after_sync can flip it.
        let d_txn = stats.global_transactions - txns_before;
        let d_coalesced = stats.global_coalesced_hits - coalesced_before;
        let d_shared = stats.shared_accesses - shared_before;
        let d_alu = stats.alu_ops - alu_before;
        let d_shuffles = stats.shuffles - shuffles_before;
        let d_atomics = stats.atomics - atomics_before;
        let pc = stats.profile.get_mut(kernel.phase());
        pc.cycles += max - round_start;
        pc.rounds += 1;
        pc.global_transactions += d_txn;
        pc.global_coalesced_hits += d_coalesced;
        pc.shared_accesses += d_shared;
        pc.alu_ops += d_alu;
        pc.shuffles += d_shuffles;
        pc.atomics += d_atomics;
        pc.active_thread_rounds += u64::from(active);
        pc.thread_rounds += n_threads as u64;
        if active > 0 && (active as usize) < n_threads {
            pc.divergent_rounds += 1;
        }
        let continue_ = kernel.after_sync(round);
        round += 1;
        if !continue_ {
            break;
        }
    }
    stats.cycles = clocks.iter().copied().max().unwrap_or(0);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Kernel: every thread does `tid + 1` ALU ops in one round.
    struct AluKernel;

    impl RoundKernel for AluKernel {
        fn round(&mut self, tid: usize, ctx: &mut ThreadCtx<'_>) -> RoundOutcome {
            ctx.alu(tid as u64 + 1);
            RoundOutcome::ACTIVE
        }
        fn after_sync(&mut self, _round: u64) -> bool {
            false
        }
    }

    #[test]
    fn round_time_is_max_thread_time() {
        let spec = DeviceSpec::test_unit();
        let stats = launch(&spec, 8, &mut AluKernel);
        // Slowest thread: 8 ALU cycles, plus 1 barrier cycle.
        assert_eq!(stats.cycles, 8 + 1);
        assert_eq!(stats.rounds, 1);
        assert_eq!(stats.alu_ops, (1..=8).sum::<u64>());
        assert_eq!(stats.active_per_round, vec![8]);
    }

    /// Kernel: runs `n` rounds of one ALU op each.
    struct MultiRound {
        remaining: u64,
    }

    impl RoundKernel for MultiRound {
        fn round(&mut self, _tid: usize, ctx: &mut ThreadCtx<'_>) -> RoundOutcome {
            ctx.alu(1);
            RoundOutcome::ACTIVE
        }
        fn after_sync(&mut self, _round: u64) -> bool {
            self.remaining -= 1;
            self.remaining > 0
        }
    }

    #[test]
    fn rounds_accumulate_barrier_costs() {
        let spec = DeviceSpec::test_unit();
        let stats = launch(&spec, 2, &mut MultiRound { remaining: 3 });
        assert_eq!(stats.rounds, 3);
        // Each round: 1 ALU + 1 barrier.
        assert_eq!(stats.cycles, 3 * 2);
    }

    /// Kernel: all threads of a warp read the same global segment.
    struct BroadcastLoad;

    impl RoundKernel for BroadcastLoad {
        fn round(&mut self, _tid: usize, ctx: &mut ThreadCtx<'_>) -> RoundOutcome {
            ctx.global(0, 0, 1);
            RoundOutcome::ACTIVE
        }
        fn after_sync(&mut self, _round: u64) -> bool {
            false
        }
    }

    #[test]
    fn same_segment_loads_coalesce_within_warp() {
        let spec = DeviceSpec::test_unit(); // warp size 4
        let stats = launch(&spec, 8, &mut BroadcastLoad);
        // Two warps: one transaction each, the other 3 threads coalesce.
        assert_eq!(stats.global_transactions, 2);
        assert_eq!(stats.global_coalesced_hits, 6);
    }

    /// Kernel: each thread streams over its own disjoint region.
    struct StridedLoad;

    impl RoundKernel for StridedLoad {
        fn round(&mut self, tid: usize, ctx: &mut ThreadCtx<'_>) -> RoundOutcome {
            // 4-byte segments on the test device: each thread touches its own.
            ctx.global(0, tid as u64 * 64, 1);
            RoundOutcome::ACTIVE
        }
        fn after_sync(&mut self, _round: u64) -> bool {
            false
        }
    }

    #[test]
    fn distinct_segments_pay_full_transactions() {
        let spec = DeviceSpec::test_unit();
        let stats = launch(&spec, 4, &mut StridedLoad);
        assert_eq!(stats.global_transactions, 4);
        assert_eq!(stats.global_coalesced_hits, 0);
    }

    #[test]
    fn coalescing_window_resets_each_round() {
        struct TwoRoundLoad;
        impl RoundKernel for TwoRoundLoad {
            fn round(&mut self, _tid: usize, ctx: &mut ThreadCtx<'_>) -> RoundOutcome {
                ctx.global(0, 0, 1);
                RoundOutcome::ACTIVE
            }
            fn after_sync(&mut self, round: u64) -> bool {
                round == 0
            }
        }
        let spec = DeviceSpec::test_unit();
        let stats = launch(&spec, 1, &mut TwoRoundLoad);
        // Same segment, but separate rounds: two transactions.
        assert_eq!(stats.global_transactions, 2);
    }

    #[test]
    fn multi_segment_access_counts_each_segment() {
        struct WideLoad;
        impl RoundKernel for WideLoad {
            fn round(&mut self, _tid: usize, ctx: &mut ThreadCtx<'_>) -> RoundOutcome {
                ctx.global(0, 0, 10); // 4-byte segments: spans 3 segments
                RoundOutcome::ACTIVE
            }
            fn after_sync(&mut self, _round: u64) -> bool {
                false
            }
        }
        let spec = DeviceSpec::test_unit();
        let stats = launch(&spec, 1, &mut WideLoad);
        assert_eq!(stats.global_transactions, 3);
    }

    #[test]
    fn recovery_crediting() {
        struct Recover;
        impl RoundKernel for Recover {
            fn round(&mut self, tid: usize, ctx: &mut ThreadCtx<'_>) -> RoundOutcome {
                if tid == 0 {
                    let start = ctx.cycles();
                    ctx.alu(10);
                    ctx.credit_recovery(start);
                    RoundOutcome::RECOVERING
                } else {
                    RoundOutcome::IDLE
                }
            }
            fn after_sync(&mut self, _round: u64) -> bool {
                false
            }
        }
        let spec = DeviceSpec::test_unit();
        let stats = launch(&spec, 4, &mut Recover);
        assert_eq!(stats.recovery_cycles, 10);
        assert_eq!(stats.recovery_runs, 1);
        assert_eq!(stats.recovering_per_round, vec![1]);
        assert_eq!(stats.active_per_round, vec![1]);
        assert!((stats.avg_active_threads_during_recovery() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "block capacity")]
    fn too_many_threads_panics() {
        let spec = DeviceSpec::test_unit();
        launch(&spec, 100_000, &mut AluKernel);
    }

    #[test]
    fn bandwidth_roofline_stretches_memory_heavy_rounds() {
        struct ManyLoads;
        impl RoundKernel for ManyLoads {
            fn round(&mut self, tid: usize, ctx: &mut ThreadCtx<'_>) -> RoundOutcome {
                // Each thread touches 10 distinct segments: 40 transactions
                // total, 10 compute cycles per thread.
                for i in 0..10u64 {
                    ctx.global(0, (tid as u64 * 1000 + i) * 64, 1);
                }
                RoundOutcome::ACTIVE
            }
            fn after_sync(&mut self, _round: u64) -> bool {
                false
            }
        }
        let mut spec = DeviceSpec::test_unit();
        spec.bandwidth_millicycles_per_txn = 2000; // 2 cycles per transaction
        let stats = launch(&spec, 4, &mut ManyLoads);
        // Compute bound would be 10 cycles; the 40 transactions need 80.
        assert_eq!(stats.global_transactions, 40);
        assert_eq!(stats.round_durations, vec![80 + 1]);
        assert_eq!(stats.cycles, 81);
    }

    #[test]
    fn rounds_charge_the_kernels_phase() {
        use crate::stats::Phase;

        /// One verify round, then one recovery round, with divergence in the
        /// recovery round (only thread 0 works).
        struct TwoPhase {
            in_recovery: bool,
        }
        impl RoundKernel for TwoPhase {
            fn round(&mut self, tid: usize, ctx: &mut ThreadCtx<'_>) -> RoundOutcome {
                if !self.in_recovery {
                    ctx.shared(2);
                    RoundOutcome::ACTIVE
                } else if tid == 0 {
                    ctx.alu(5);
                    RoundOutcome::RECOVERING
                } else {
                    RoundOutcome::IDLE
                }
            }
            fn after_sync(&mut self, round: u64) -> bool {
                self.in_recovery = true;
                round == 0
            }
            fn phase(&self) -> Phase {
                if self.in_recovery {
                    Phase::Recovery
                } else {
                    Phase::Verify
                }
            }
        }

        let spec = DeviceSpec::test_unit();
        let stats = launch(&spec, 4, &mut TwoPhase { in_recovery: false });
        let verify = stats.profile.get(Phase::Verify);
        let recovery = stats.profile.get(Phase::Recovery);
        assert_eq!(verify.rounds, 1);
        assert_eq!(verify.shared_accesses, 2 * 4);
        assert_eq!(verify.divergent_rounds, 0);
        assert_eq!(verify.thread_rounds, 4);
        assert_eq!(verify.active_thread_rounds, 4);
        assert_eq!(recovery.rounds, 1);
        assert_eq!(recovery.alu_ops, 5);
        assert_eq!(recovery.divergent_rounds, 1);
        assert_eq!(recovery.active_thread_rounds, 1);
        assert_eq!(stats.profile.total_cycles(), stats.cycles, "phases partition kernel time");
        assert_eq!(stats.profile.get(Phase::SpecExec).rounds, 0);
    }

    #[test]
    fn default_phase_is_speculative_execution() {
        use crate::stats::Phase;
        let spec = DeviceSpec::test_unit();
        let stats = launch(&spec, 8, &mut AluKernel);
        let spec_exec = stats.profile.get(Phase::SpecExec);
        assert_eq!(spec_exec.cycles, stats.cycles);
        assert_eq!(spec_exec.alu_ops, stats.alu_ops);
        assert_eq!(stats.profile.total_cycles(), stats.cycles);
        for (phase, c) in stats.profile.iter() {
            if phase != Phase::SpecExec {
                assert_eq!(*c, crate::stats::PhaseCounters::default(), "{phase} must stay empty");
            }
        }
    }

    #[test]
    fn bandwidth_roofline_cycles_land_in_the_profile() {
        use crate::stats::Phase;
        struct ManyLoads;
        impl RoundKernel for ManyLoads {
            fn round(&mut self, tid: usize, ctx: &mut ThreadCtx<'_>) -> RoundOutcome {
                for i in 0..10u64 {
                    ctx.global(0, (tid as u64 * 1000 + i) * 64, 1);
                }
                RoundOutcome::ACTIVE
            }
            fn after_sync(&mut self, _round: u64) -> bool {
                false
            }
        }
        let mut spec = DeviceSpec::test_unit();
        spec.bandwidth_millicycles_per_txn = 2000;
        let stats = launch(&spec, 4, &mut ManyLoads);
        // The roofline stretch (80 + barrier vs 10 compute cycles) must be
        // attributed, not just the compute time.
        assert_eq!(stats.profile.get(Phase::SpecExec).cycles, 81);
        assert_eq!(stats.profile.get(Phase::SpecExec).global_transactions, 40);
    }

    #[test]
    fn segment_window_matches_hashset_semantics() {
        use std::collections::HashSet;
        // Differential check against the reference container the window
        // replaced, across clears and a forced growth: `insert` must return
        // exactly what `HashSet::insert` returns for every access pattern.
        let mut window = SegmentWindow::new();
        let mut reference: HashSet<(u32, u64)> = HashSet::new();
        let mut state = 0x1234_5678_9abc_def0u64;
        for round in 0..8 {
            window.clear();
            reference.clear();
            for _ in 0..500 {
                state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                let region = ((state >> 33) % 3) as u32;
                // Small segment space forces duplicates; +round varies the
                // key set across generations.
                let seg = (state >> 11) % 200 + round;
                assert_eq!(
                    window.insert(region, seg),
                    reference.insert((region, seg)),
                    "window diverged from HashSet on ({region}, {seg})",
                );
            }
        }
    }

    #[test]
    fn regions_do_not_coalesce_across_each_other() {
        struct TwoRegions;
        impl RoundKernel for TwoRegions {
            fn round(&mut self, _tid: usize, ctx: &mut ThreadCtx<'_>) -> RoundOutcome {
                ctx.global(0, 0, 1);
                ctx.global(1, 0, 1);
                RoundOutcome::ACTIVE
            }
            fn after_sync(&mut self, _round: u64) -> bool {
                false
            }
        }
        let spec = DeviceSpec::test_unit();
        let stats = launch(&spec, 1, &mut TwoRegions);
        assert_eq!(stats.global_transactions, 2);
    }
}
