//! Deterministic fault injection: seeded fault plans for chaos testing.
//!
//! A [`FaultPlan`] decides — as a *pure function* of its seed and the launch
//! coordinates of the thing being faulted — whether a block attempt aborts,
//! a host↔device copy fails, a chunk's speculation records are corrupted, or
//! a block trips the per-kernel watchdog budget. Because every decision is a
//! hash of `(seed, domain, coordinate, attempt)` and never consults ambient
//! state (no clocks, no RNG, no thread ids), the same plan produces the same
//! faults on every host, at every rayon pool size, in every run — which is
//! what lets the recovery layers above assert bit-identical reports under
//! chaos.
//!
//! The plan only *decides*; it never mutates anything. The recovery policies
//! (retry with capped exponential backoff, graceful degradation, load
//! shedding, circuit breaking) live in `gspecpal` and `gspecpal-serve`,
//! which consult the plan at the few well-defined injection points: grid
//! launches, the verification record store, and the serve pipeline's copy
//! engines.

use crate::error::LaunchError;

/// Where in the pipeline a fault decision is being made. Each domain salts
/// the hash differently, so e.g. block 3 of the speculative-execution grid
/// and block 3 of the verification grid fault independently.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultDomain {
    /// Blocks of the speculative-execution grid.
    Exec,
    /// Blocks of the verification/recovery grid.
    Verify,
    /// Host→device input copies.
    H2d,
    /// Device→host result copies.
    D2h,
    /// Speculative-state corruption of a chunk's verification records.
    Corrupt,
}

impl FaultDomain {
    fn salt(self) -> u64 {
        match self {
            FaultDomain::Exec => 0x45584543,
            FaultDomain::Verify => 0x56455249,
            FaultDomain::H2d => 0x48324400,
            FaultDomain::D2h => 0x44324800,
            FaultDomain::Corrupt => 0x434f5252,
        }
    }
}

/// A seeded, deterministic fault plan.
///
/// All rates are in permille (0 = never, 1000 = always). The zero plan
/// ([`FaultPlan::default`]) injects nothing and is behaviourally identical
/// to running without a plan at all.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed every fault decision is derived from.
    pub seed: u64,
    /// Probability (permille) that a block attempt aborts mid-run.
    pub abort_permille: u32,
    /// Probability (permille) that a host↔device copy attempt fails.
    pub copy_fail_permille: u32,
    /// Probability (permille) that a chunk's speculation records are
    /// corrupted after the speculative-execution phase.
    pub corrupt_permille: u32,
    /// Per-kernel watchdog budget in cycles; a block whose attempt exceeds
    /// it is killed with [`LaunchError::WatchdogExpired`]. 0 disables the
    /// watchdog.
    pub watchdog_cycles: u64,
}

impl FaultPlan {
    /// A plan injecting every transient fault kind (aborts, copy failures,
    /// record corruption) at the same `permille` rate, watchdog disabled.
    pub fn chaos(seed: u64, permille: u32) -> Self {
        FaultPlan {
            seed,
            abort_permille: permille,
            copy_fail_permille: permille,
            corrupt_permille: permille,
            watchdog_cycles: 0,
        }
    }

    /// Whether the plan can inject anything at all.
    pub fn any_faults(&self) -> bool {
        self.abort_permille > 0
            || self.copy_fail_permille > 0
            || self.corrupt_permille > 0
            || self.watchdog_cycles > 0
    }

    /// The raw 64-bit roll for `(domain, coord, attempt)` — a splitmix64
    /// hash chain over the seed. Exposed so callers can derive auxiliary
    /// deterministic quantities (e.g. a corrupted state value) from the same
    /// coordinates.
    pub fn roll(&self, domain: FaultDomain, coord: u64, attempt: u32) -> u64 {
        let mut z = mix(self.seed ^ domain.salt().rotate_left(17));
        z = mix(z ^ coord);
        mix(z ^ u64::from(attempt).rotate_left(41))
    }

    fn hits(&self, permille: u32, domain: FaultDomain, coord: u64, attempt: u32) -> bool {
        permille > 0 && self.roll(domain, coord, attempt) % 1000 < u64::from(permille)
    }

    /// Whether attempt `attempt` of block `block` in `domain` aborts.
    pub fn aborts(&self, domain: FaultDomain, block: usize, attempt: u32) -> bool {
        self.hits(self.abort_permille, domain, fault_coord(block), attempt)
    }

    /// How far through the block (permille of its cycles, 0–999) an abort at
    /// these coordinates strikes — the wasted fraction of the attempt.
    pub fn abort_point_permille(&self, domain: FaultDomain, block: usize, attempt: u32) -> u64 {
        self.roll(domain, fault_coord(block).rotate_left(23), attempt ^ 0x5A5A) % 1000
    }

    /// Whether attempt `attempt` of copy `copy_id` in `domain` fails
    /// (`domain` is [`FaultDomain::H2d`] or [`FaultDomain::D2h`]).
    pub fn copy_fails(&self, domain: FaultDomain, copy_id: u64, attempt: u32) -> bool {
        self.hits(self.copy_fail_permille, domain, copy_id, attempt)
    }

    /// Whether chunk `chunk`'s verification records are corrupted.
    pub fn corrupts(&self, chunk: usize) -> bool {
        self.hits(self.corrupt_permille, FaultDomain::Corrupt, fault_coord(chunk), 0)
    }

    /// Checks a block attempt against the watchdog budget: a block that ran
    /// `cycles` cycles past a nonzero `watchdog_cycles` budget is killed with
    /// a structured [`LaunchError::WatchdogExpired`].
    pub fn watchdog_violation(&self, block: usize, cycles: u64) -> Option<LaunchError> {
        if self.watchdog_cycles > 0 && cycles > self.watchdog_cycles {
            Some(LaunchError::WatchdogExpired { block, cycles, budget: self.watchdog_cycles })
        } else {
            None
        }
    }
}

/// Widens a host-side index (block, batch, chunk) into a fault-plan
/// coordinate. Every fault decision must key on the *exact* index: a lossy
/// narrowing cast here would alias distant coordinates (e.g. batch
/// `2^32 + 5` rolling the same fault as batch `5`) and silently correlate
/// injected faults on huge runs. `usize` is at most 64 bits on every
/// platform Rust supports, so the conversion is infallible today; the
/// `try_from` documents the invariant and turns any future violation into a
/// loud panic instead of silent aliasing.
pub fn fault_coord(index: usize) -> u64 {
    u64::try_from(index).expect("usize fault coordinates must fit in u64")
}

/// Capped exponential backoff before retry `attempt` (0-based):
/// `min(base << attempt, cap)`, saturating on shift overflow.
pub fn backoff_cycles(base: u64, cap: u64, attempt: u32) -> u64 {
    if base == 0 {
        return 0;
    }
    let scaled = if attempt >= 63 { u64::MAX } else { base.saturating_mul(1u64 << attempt) };
    scaled.min(cap)
}

/// splitmix64 finalizer — the avalanche permutation behind every roll.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolls_are_pure_functions_of_coordinates() {
        let plan = FaultPlan::chaos(42, 100);
        for domain in [FaultDomain::Exec, FaultDomain::Verify, FaultDomain::H2d] {
            for block in 0..50 {
                for attempt in 0..4 {
                    assert_eq!(
                        plan.aborts(domain, block, attempt),
                        plan.aborts(domain, block, attempt),
                    );
                    assert_eq!(
                        plan.roll(domain, block as u64, attempt),
                        FaultPlan::chaos(42, 100).roll(domain, block as u64, attempt),
                    );
                }
            }
        }
    }

    #[test]
    fn domains_and_seeds_decorrelate() {
        let a = FaultPlan::chaos(1, 500);
        let b = FaultPlan::chaos(2, 500);
        let mut diff_seed = 0;
        let mut diff_domain = 0;
        for block in 0..200 {
            if a.aborts(FaultDomain::Exec, block, 0) != b.aborts(FaultDomain::Exec, block, 0) {
                diff_seed += 1;
            }
            if a.aborts(FaultDomain::Exec, block, 0) != a.aborts(FaultDomain::Verify, block, 0) {
                diff_domain += 1;
            }
        }
        assert!(diff_seed > 20, "seeds must decorrelate ({diff_seed})");
        assert!(diff_domain > 20, "domains must decorrelate ({diff_domain})");
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let plan = FaultPlan::chaos(7, 100); // 10%
        let hits = (0..10_000).filter(|&b| plan.aborts(FaultDomain::Exec, b, 0)).count();
        assert!((800..1200).contains(&hits), "10% of 10k rolls, got {hits}");
        let zero = FaultPlan::default();
        assert!(!(0..1000).any(|b| zero.aborts(FaultDomain::Exec, b, 0)));
        assert!(!zero.any_faults());
        let always = FaultPlan::chaos(7, 1000);
        assert!((0..1000).all(|b| always.copy_fails(FaultDomain::H2d, b, 3)));
    }

    #[test]
    fn abort_points_stay_in_range() {
        let plan = FaultPlan::chaos(3, 1000);
        for b in 0..500 {
            assert!(plan.abort_point_permille(FaultDomain::Exec, b, 1) < 1000);
        }
    }

    #[test]
    fn watchdog_kills_only_over_budget_blocks() {
        let plan = FaultPlan { watchdog_cycles: 100, ..FaultPlan::default() };
        assert_eq!(plan.watchdog_violation(4, 100), None, "at budget survives");
        let err = plan.watchdog_violation(4, 101).expect("over budget dies");
        assert_eq!(err, LaunchError::WatchdogExpired { block: 4, cycles: 101, budget: 100 });
        let off = FaultPlan::default();
        assert_eq!(off.watchdog_violation(0, u64::MAX), None, "0 disables the watchdog");
    }

    #[test]
    fn wide_coordinates_do_not_alias_small_ones() {
        // A >32-bit coordinate must not roll like its low 32 bits: if any
        // conversion on the fault path truncated, batch 2^32 + 5 would fault
        // exactly like batch 5 and chaos runs on huge traces would inject
        // correlated faults.
        let plan = FaultPlan::chaos(42, 500);
        let small = 5usize;
        let wide = (1usize << 32) + 5;
        assert_eq!(fault_coord(wide), (1u64 << 32) + 5);
        for domain in [FaultDomain::Exec, FaultDomain::Verify, FaultDomain::H2d] {
            for attempt in 0..4 {
                assert_ne!(
                    plan.roll(domain, fault_coord(small), attempt),
                    plan.roll(domain, fault_coord(wide), attempt),
                    "{domain:?} attempt {attempt}: wide coordinate aliased a small one",
                );
            }
        }
        assert_ne!(
            plan.abort_point_permille(FaultDomain::Exec, small, 1),
            plan.abort_point_permille(FaultDomain::Exec, wide, 1),
        );
    }

    #[test]
    fn backoff_doubles_until_the_cap() {
        assert_eq!(backoff_cycles(64, 1024, 0), 64);
        assert_eq!(backoff_cycles(64, 1024, 1), 128);
        assert_eq!(backoff_cycles(64, 1024, 4), 1024);
        assert_eq!(backoff_cycles(64, 1024, 40), 1024, "cap holds");
        assert_eq!(backoff_cycles(64, 1024, 200), 1024, "huge attempts saturate");
        assert_eq!(backoff_cycles(0, 1024, 5), 0, "zero base disables backoff");
    }
}
