//! Kernel execution statistics.

use crate::spec::DeviceSpec;

/// How the grid scheduler shaped a launch: what the occupancy calculator
/// allowed per SM and how many waves the grid took. Attached to the merged
/// stats of every grid launch so benches (and `RunOutcome`) can see the
/// occupancy a kernel actually achieved — a shared-memory-heavy shape shows
/// up as fewer resident blocks and more waves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LaunchShape {
    /// Resident blocks per SM from [`crate::occupancy::max_resident_blocks`].
    pub resident_per_sm: u32,
    /// Blocks scheduled per wave (`resident_per_sm × n_sms`).
    pub blocks_per_wave: u32,
    /// Waves the grid needed.
    pub waves: u32,
}

/// Counters collected while a kernel runs.
///
/// `cycles` is the kernel's simulated execution time: the maximum per-thread
/// clock after the final barrier, which is what a CUDA event pair around the
/// kernel launch would measure (§V-A reports GPU kernel time from CUDA
/// events).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct KernelStats {
    /// Simulated kernel time in cycles.
    pub cycles: u64,
    /// Number of barrier-delimited rounds executed.
    pub rounds: u64,
    /// Global-memory transactions issued (after coalescing).
    pub global_transactions: u64,
    /// Global accesses that were absorbed by coalescing/broadcast within a
    /// warp (no new transaction needed).
    pub global_coalesced_hits: u64,
    /// Shared-memory accesses.
    pub shared_accesses: u64,
    /// ALU operations.
    pub alu_ops: u64,
    /// Warp shuffles / explicit thread communications.
    pub shuffles: u64,
    /// Atomic operations.
    pub atomics: u64,
    /// Per-round count of threads that reported doing work.
    pub active_per_round: Vec<u32>,
    /// Per-round count of threads that reported doing *recovery* work
    /// (re-executing a chunk). Feeds Table III.
    pub recovering_per_round: Vec<u32>,
    /// Wall-clock duration of each round in cycles (including the
    /// memory-bandwidth roofline and the barrier). Feeds Fig 9.
    pub round_durations: Vec<u64>,
    /// Cycles attributable to chunk re-execution (recovery work), summed
    /// over threads. Feeds Fig 9's per-chunk recovery cost.
    pub recovery_cycles: u64,
    /// Number of chunk re-executions performed during verification/recovery.
    pub recovery_runs: u64,
    /// Occupancy shape of the grid launch these stats came from (`None` for
    /// single-block launches). Merges keep the first shape seen: a scheme's
    /// phase stats report the shape of that phase's main grid.
    pub shape: Option<LaunchShape>,
}

impl KernelStats {
    /// Average number of threads active in rounds where at least one thread
    /// performed recovery work — the paper's Table III "Average #Active
    /// Threads" during recovery. Returns 0.0 when no recovery ever happened.
    pub fn avg_active_threads_during_recovery(&self) -> f64 {
        let mut sum = 0u64;
        let mut n = 0u64;
        for &r in &self.recovering_per_round {
            if r > 0 {
                sum += u64::from(r);
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum as f64 / n as f64
        }
    }

    /// Mean recovery cycles per re-executed chunk (Fig 9's y-axis before
    /// normalization). Returns 0.0 if no recovery ran.
    pub fn recovery_cycles_per_run(&self) -> f64 {
        if self.recovery_runs == 0 {
            0.0
        } else {
            self.recovery_cycles as f64 / self.recovery_runs as f64
        }
    }

    /// Mean wall duration of rounds in which at least one thread recovered —
    /// the "recovery execution time per chunk" of Fig 9: under contention a
    /// chunk re-execution round takes longer than a solo one.
    pub fn avg_recovery_round_duration(&self) -> f64 {
        let mut sum = 0u64;
        let mut n = 0u64;
        for (i, &r) in self.recovering_per_round.iter().enumerate() {
            if r > 0 {
                sum += self.round_durations.get(i).copied().unwrap_or(0);
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum as f64 / n as f64
        }
    }

    /// A one-line summary for logs.
    pub fn brief(&self) -> String {
        format!(
            "{} cycles over {} rounds ({} global txns, {} coalesced, {} shared, {} alu)",
            self.cycles,
            self.rounds,
            self.global_transactions,
            self.global_coalesced_hits,
            self.shared_accesses,
            self.alu_ops
        )
    }

    /// Kernel time in microseconds on `spec`.
    pub fn time_us(&self, spec: &DeviceSpec) -> f64 {
        spec.cycles_to_us(self.cycles)
    }

    /// Merges another *block's* counters into this one, treating the two as
    /// concurrent blocks of a single grid launch: every counter sums and the
    /// per-round event streams concatenate (block order), but `cycles` is
    /// left untouched — concurrent blocks do not serialize, so grid time is
    /// the scheduler's job (the occupancy wave model in [`crate::grid`]).
    pub fn absorb_block(&mut self, other: &KernelStats) {
        self.rounds += other.rounds;
        self.global_transactions += other.global_transactions;
        self.global_coalesced_hits += other.global_coalesced_hits;
        self.shared_accesses += other.shared_accesses;
        self.alu_ops += other.alu_ops;
        self.shuffles += other.shuffles;
        self.atomics += other.atomics;
        self.active_per_round.extend_from_slice(&other.active_per_round);
        self.recovering_per_round.extend_from_slice(&other.recovering_per_round);
        self.round_durations.extend_from_slice(&other.round_durations);
        self.recovery_cycles += other.recovery_cycles;
        self.recovery_runs += other.recovery_runs;
        if self.shape.is_none() {
            self.shape = other.shape;
        }
    }

    /// Merges another kernel's counters into this one, treating the two
    /// kernels as launched back-to-back (cycles add).
    pub fn merge_sequential(&mut self, other: &KernelStats) {
        self.cycles += other.cycles;
        self.absorb_block(other);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_active_ignores_quiet_rounds() {
        let s = KernelStats { recovering_per_round: vec![0, 4, 0, 2, 0], ..KernelStats::default() };
        assert!((s.avg_active_threads_during_recovery() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn avg_active_zero_when_no_recovery() {
        let s = KernelStats { recovering_per_round: vec![0, 0], ..KernelStats::default() };
        assert_eq!(s.avg_active_threads_during_recovery(), 0.0);
    }

    #[test]
    fn brief_mentions_cycles_and_rounds() {
        let s = KernelStats { cycles: 42, rounds: 3, ..KernelStats::default() };
        let b = s.brief();
        assert!(b.contains("42 cycles"));
        assert!(b.contains("3 rounds"));
    }

    #[test]
    fn merge_accumulates() {
        let mut a = KernelStats { cycles: 10, rounds: 2, ..KernelStats::default() };
        let b = KernelStats { cycles: 5, rounds: 1, ..KernelStats::default() };
        a.merge_sequential(&b);
        assert_eq!(a.cycles, 15);
        assert_eq!(a.rounds, 3);
    }

    #[test]
    fn recovery_cycles_per_run() {
        let s = KernelStats { recovery_cycles: 100, recovery_runs: 4, ..KernelStats::default() };
        assert!((s.recovery_cycles_per_run() - 25.0).abs() < 1e-12);
        assert_eq!(KernelStats::default().recovery_cycles_per_run(), 0.0);
    }
}
