//! Kernel execution statistics.

use crate::spec::DeviceSpec;

/// The algorithmic phase a barrier-delimited round belongs to.
///
/// This is the paper's cost taxonomy (§III, Equation 1 and the §III-C
/// redundancy/recovery analysis) lifted into the simulator: every round a
/// kernel executes is attributed to exactly one phase via
/// [`crate::kernel::RoundKernel::phase`], so the per-phase cycle split always
/// sums to the kernel's total cycles. The bench layer reports these splits in
/// the machine-readable perf dumps CI tracks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Start-state prediction (the constant `C` of Equation 1: the all-state
    /// lookback walk and queue ranking).
    Predict,
    /// Speculative chunk execution (`T_par`): spec-1/spec-k forward scans,
    /// including the enumerative all-state scans and plain stream scans.
    SpecExec,
    /// Verification: record scans, end-state communication, tree-merge and
    /// compose rounds — everything that *checks* speculation without
    /// re-executing input.
    Verify,
    /// Recovery: chunk re-execution after a failed speculation check (the
    /// must-be-done and speculative recoveries of Algorithms 3-5, and PM's
    /// delayed sequential walk).
    Recovery,
    /// Block-seam stitching: the grid-level seam checks and cluster fix-ups
    /// of the boundary stitch.
    Stitch,
    /// Host↔device transfers: PCIe copies of batch inputs and results,
    /// charged by [`crate::transfer::transfer_stats`]. Kernel simulation
    /// never touches this bucket — it is populated when a serving pipeline
    /// merges copy costs into a run's stats (see `gspecpal-serve`).
    Transfer,
}

impl Phase {
    /// Every phase, in canonical report order.
    pub const ALL: [Phase; 6] = [
        Phase::Predict,
        Phase::SpecExec,
        Phase::Verify,
        Phase::Recovery,
        Phase::Stitch,
        Phase::Transfer,
    ];

    /// Position of this phase in [`Phase::ALL`] (and in a
    /// [`PhaseProfile`]'s counter array).
    pub fn index(self) -> usize {
        match self {
            Phase::Predict => 0,
            Phase::SpecExec => 1,
            Phase::Verify => 2,
            Phase::Recovery => 3,
            Phase::Stitch => 4,
            Phase::Transfer => 5,
        }
    }

    /// Stable snake_case name used as the key in perf-report JSON.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Predict => "predict",
            Phase::SpecExec => "spec_exec",
            Phase::Verify => "verify",
            Phase::Recovery => "recovery",
            Phase::Stitch => "stitch",
            Phase::Transfer => "transfer",
        }
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Counters accumulated for one [`Phase`] of a kernel.
///
/// `cycles` partitions the kernel's wall time (round durations, barrier and
/// bandwidth roofline included); the event counters partition the flat
/// [`KernelStats`] counters; the round counters feed divergence and
/// utilization metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseCounters {
    /// Wall cycles of rounds attributed to this phase.
    pub cycles: u64,
    /// Rounds attributed to this phase.
    pub rounds: u64,
    /// Global-memory transactions issued in this phase (after coalescing).
    pub global_transactions: u64,
    /// Global accesses absorbed by warp coalescing/broadcast in this phase.
    pub global_coalesced_hits: u64,
    /// Shared-memory accesses (including hash probes) in this phase.
    pub shared_accesses: u64,
    /// ALU operations in this phase.
    pub alu_ops: u64,
    /// Warp shuffles in this phase.
    pub shuffles: u64,
    /// Atomic operations in this phase.
    pub atomics: u64,
    /// Rounds in which some but not all of the block's threads were active —
    /// chunk-granularity branch divergence, the round-time killer of §III.
    pub divergent_rounds: u64,
    /// Sum over this phase's rounds of the active-thread count.
    pub active_thread_rounds: u64,
    /// Sum over this phase's rounds of the launched-thread count (the
    /// denominator of [`PhaseCounters::utilization`]).
    pub thread_rounds: u64,
}

impl PhaseCounters {
    /// Achieved thread utilization: active thread-rounds over launched
    /// thread-rounds (0.0 when the phase never ran).
    pub fn utilization(&self) -> f64 {
        if self.thread_rounds == 0 {
            0.0
        } else {
            self.active_thread_rounds as f64 / self.thread_rounds as f64
        }
    }

    /// Fraction of global accesses served by warp coalescing/broadcast
    /// rather than a fresh transaction (0.0 when no global access happened).
    pub fn coalesced_fraction(&self) -> f64 {
        let total = self.global_transactions + self.global_coalesced_hits;
        if total == 0 {
            0.0
        } else {
            self.global_coalesced_hits as f64 / total as f64
        }
    }

    /// Adds `other`'s event and round counters (everything except `cycles`).
    fn add_events(&mut self, other: &PhaseCounters) {
        self.rounds += other.rounds;
        self.global_transactions += other.global_transactions;
        self.global_coalesced_hits += other.global_coalesced_hits;
        self.shared_accesses += other.shared_accesses;
        self.alu_ops += other.alu_ops;
        self.shuffles += other.shuffles;
        self.atomics += other.atomics;
        self.divergent_rounds += other.divergent_rounds;
        self.active_thread_rounds += other.active_thread_rounds;
        self.thread_rounds += other.thread_rounds;
    }
}

/// Per-phase breakdown of a kernel's cost, one [`PhaseCounters`] per
/// [`Phase`].
///
/// Invariant maintained by every launcher and merge in this crate: the
/// per-phase `cycles` sum to the owning [`KernelStats::cycles`] exactly — no
/// double-charged and no unattributed cycles. Merging follows the same
/// semantics as the flat stats: [`PhaseProfile::absorb_block`] treats two
/// profiles as concurrent blocks (event counters sum, cycles are the grid
/// scheduler's job), [`PhaseProfile::merge_sequential`] as back-to-back
/// kernels (everything sums).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseProfile {
    counters: [PhaseCounters; 6],
}

impl PhaseProfile {
    /// The counters of `phase`.
    pub fn get(&self, phase: Phase) -> &PhaseCounters {
        &self.counters[phase.index()]
    }

    /// Mutable counters of `phase`.
    pub fn get_mut(&mut self, phase: Phase) -> &mut PhaseCounters {
        &mut self.counters[phase.index()]
    }

    /// Iterates phases with their counters, in [`Phase::ALL`] order.
    pub fn iter(&self) -> impl Iterator<Item = (Phase, &PhaseCounters)> {
        Phase::ALL.iter().copied().zip(self.counters.iter())
    }

    /// Sum of the per-phase cycles — equal to the owning
    /// [`KernelStats::cycles`] by the profile invariant.
    pub fn total_cycles(&self) -> u64 {
        self.counters.iter().map(|c| c.cycles).sum()
    }

    /// Merges `other` as a concurrent block: event and round counters sum,
    /// per-phase cycles are left untouched (concurrent blocks do not
    /// serialize — the grid merge attributes wave time separately, see
    /// [`PhaseProfile::absorb_cycles`]).
    pub fn absorb_block(&mut self, other: &PhaseProfile) {
        for (mine, theirs) in self.counters.iter_mut().zip(&other.counters) {
            mine.add_events(theirs);
        }
    }

    /// Adds only `other`'s per-phase cycles. The grid merge calls this with
    /// the profile of each wave's gating (slowest) block, so the wave-model
    /// completion time keeps an exact per-phase attribution.
    pub fn absorb_cycles(&mut self, other: &PhaseProfile) {
        for (mine, theirs) in self.counters.iter_mut().zip(&other.counters) {
            mine.cycles += theirs.cycles;
        }
    }

    /// Merges `other` as a back-to-back kernel: everything sums.
    pub fn merge_sequential(&mut self, other: &PhaseProfile) {
        self.absorb_cycles(other);
        self.absorb_block(other);
    }
}

/// How the grid scheduler shaped a launch: what the occupancy calculator
/// allowed per SM and how many waves the grid took. Attached to the merged
/// stats of every grid launch so benches (and `RunOutcome`) can see the
/// occupancy a kernel actually achieved — a shared-memory-heavy shape shows
/// up as fewer resident blocks and more waves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LaunchShape {
    /// Resident blocks per SM from [`crate::occupancy::max_resident_blocks`].
    pub resident_per_sm: u32,
    /// Blocks scheduled per wave (`resident_per_sm × n_sms`).
    pub blocks_per_wave: u32,
    /// Waves the grid needed.
    pub waves: u32,
}

/// Counters collected while a kernel runs.
///
/// `cycles` is the kernel's simulated execution time: the maximum per-thread
/// clock after the final barrier, which is what a CUDA event pair around the
/// kernel launch would measure (§V-A reports GPU kernel time from CUDA
/// events).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct KernelStats {
    /// Simulated kernel time in cycles.
    pub cycles: u64,
    /// Number of barrier-delimited rounds executed.
    pub rounds: u64,
    /// Global-memory transactions issued (after coalescing).
    pub global_transactions: u64,
    /// Global accesses that were absorbed by coalescing/broadcast within a
    /// warp (no new transaction needed).
    pub global_coalesced_hits: u64,
    /// Shared-memory accesses.
    pub shared_accesses: u64,
    /// ALU operations.
    pub alu_ops: u64,
    /// Warp shuffles / explicit thread communications.
    pub shuffles: u64,
    /// Atomic operations.
    pub atomics: u64,
    /// Per-round count of threads that reported doing work.
    pub active_per_round: Vec<u32>,
    /// Per-round count of threads that reported doing *recovery* work
    /// (re-executing a chunk). Feeds Table III.
    pub recovering_per_round: Vec<u32>,
    /// Wall-clock duration of each round in cycles (including the
    /// memory-bandwidth roofline and the barrier). Feeds Fig 9.
    pub round_durations: Vec<u64>,
    /// Cycles attributable to chunk re-execution (recovery work), summed
    /// over threads. Feeds Fig 9's per-chunk recovery cost.
    pub recovery_cycles: u64,
    /// Number of chunk re-executions performed during verification/recovery.
    pub recovery_runs: u64,
    /// Injected-fault retries: block attempts that were re-run after a
    /// transient abort or watchdog kill (zero without a fault plan).
    pub fault_retries: u64,
    /// Block attempts killed by the fault plan's watchdog budget.
    pub fault_watchdog_kills: u64,
    /// Blocks that exhausted their retry budget (or crossed the
    /// misspeculation threshold) and were degraded to a sequential re-exec.
    pub fault_degraded_blocks: u64,
    /// Total cycles lost to injected faults: wasted aborted/killed attempts,
    /// retry backoff, and degraded sequential re-execution. A subset of the
    /// `Phase::Recovery` cycles.
    pub fault_cycles: u64,
    /// Occupancy shape of the grid launch these stats came from (`None` for
    /// single-block launches). Merges keep the first shape seen: a scheme's
    /// phase stats report the shape of that phase's main grid.
    pub shape: Option<LaunchShape>,
    /// Per-[`Phase`] breakdown of the counters above. The per-phase cycles
    /// sum exactly to `cycles`; the per-phase event counters partition the
    /// flat event counters.
    pub profile: PhaseProfile,
}

impl KernelStats {
    /// Average number of threads active in rounds where at least one thread
    /// performed recovery work — the paper's Table III "Average #Active
    /// Threads" during recovery. Returns 0.0 when no recovery ever happened.
    pub fn avg_active_threads_during_recovery(&self) -> f64 {
        let mut sum = 0u64;
        let mut n = 0u64;
        for &r in &self.recovering_per_round {
            if r > 0 {
                sum += u64::from(r);
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum as f64 / n as f64
        }
    }

    /// Mean recovery cycles per re-executed chunk (Fig 9's y-axis before
    /// normalization). Returns 0.0 if no recovery ran.
    pub fn recovery_cycles_per_run(&self) -> f64 {
        if self.recovery_runs == 0 {
            0.0
        } else {
            self.recovery_cycles as f64 / self.recovery_runs as f64
        }
    }

    /// Mean wall duration of rounds in which at least one thread recovered —
    /// the "recovery execution time per chunk" of Fig 9: under contention a
    /// chunk re-execution round takes longer than a solo one.
    pub fn avg_recovery_round_duration(&self) -> f64 {
        let mut sum = 0u64;
        let mut n = 0u64;
        for (i, &r) in self.recovering_per_round.iter().enumerate() {
            if r > 0 {
                sum += self.round_durations.get(i).copied().unwrap_or(0);
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum as f64 / n as f64
        }
    }

    /// A one-line summary for logs.
    pub fn brief(&self) -> String {
        format!(
            "{} cycles over {} rounds ({} global txns, {} coalesced, {} shared, {} alu)",
            self.cycles,
            self.rounds,
            self.global_transactions,
            self.global_coalesced_hits,
            self.shared_accesses,
            self.alu_ops
        )
    }

    /// Kernel time in microseconds on `spec`.
    pub fn time_us(&self, spec: &DeviceSpec) -> f64 {
        spec.cycles_to_us(self.cycles)
    }

    /// Merges another *block's* counters into this one, treating the two as
    /// concurrent blocks of a single grid launch: every counter sums and the
    /// per-round event streams concatenate (block order), but `cycles` is
    /// left untouched — concurrent blocks do not serialize, so grid time is
    /// the scheduler's job (the occupancy wave model in [`crate::grid`]).
    pub fn absorb_block(&mut self, other: &KernelStats) {
        self.active_per_round.extend_from_slice(&other.active_per_round);
        self.recovering_per_round.extend_from_slice(&other.recovering_per_round);
        self.round_durations.extend_from_slice(&other.round_durations);
        self.absorb_block_counters(other);
    }

    /// The scalar half of [`KernelStats::absorb_block`]: everything except
    /// the per-round event streams.
    fn absorb_block_counters(&mut self, other: &KernelStats) {
        self.rounds += other.rounds;
        self.global_transactions += other.global_transactions;
        self.global_coalesced_hits += other.global_coalesced_hits;
        self.shared_accesses += other.shared_accesses;
        self.alu_ops += other.alu_ops;
        self.shuffles += other.shuffles;
        self.atomics += other.atomics;
        self.recovery_cycles += other.recovery_cycles;
        self.recovery_runs += other.recovery_runs;
        self.fault_retries += other.fault_retries;
        self.fault_watchdog_kills += other.fault_watchdog_kills;
        self.fault_degraded_blocks += other.fault_degraded_blocks;
        self.fault_cycles += other.fault_cycles;
        if self.shape.is_none() {
            self.shape = other.shape;
        }
        self.profile.absorb_block(&other.profile);
    }

    /// Merges another kernel's counters into this one, treating the two
    /// kernels as launched back-to-back (cycles add, per-phase cycles add).
    pub fn merge_sequential(&mut self, other: &KernelStats) {
        self.cycles += other.cycles;
        self.profile.absorb_cycles(&other.profile);
        self.absorb_block(other);
    }

    /// Like [`KernelStats::merge_sequential`], but drops `other`'s per-round
    /// event streams (`active_per_round`, `recovering_per_round`,
    /// `round_durations`) instead of concatenating them. Every scalar
    /// counter, cycle total, and the per-phase profile merge identically —
    /// only the O(rounds) vectors are skipped, which is what keeps a
    /// streaming serve run's merged stats bounded no matter how many
    /// batches it dispatches.
    pub fn merge_sequential_compact(&mut self, other: &KernelStats) {
        self.cycles += other.cycles;
        self.profile.absorb_cycles(&other.profile);
        self.absorb_block_counters(other);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_active_ignores_quiet_rounds() {
        let s = KernelStats { recovering_per_round: vec![0, 4, 0, 2, 0], ..KernelStats::default() };
        assert!((s.avg_active_threads_during_recovery() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn avg_active_zero_when_no_recovery() {
        let s = KernelStats { recovering_per_round: vec![0, 0], ..KernelStats::default() };
        assert_eq!(s.avg_active_threads_during_recovery(), 0.0);
    }

    #[test]
    fn brief_mentions_cycles_and_rounds() {
        let s = KernelStats { cycles: 42, rounds: 3, ..KernelStats::default() };
        let b = s.brief();
        assert!(b.contains("42 cycles"));
        assert!(b.contains("3 rounds"));
    }

    #[test]
    fn merge_accumulates() {
        let mut a = KernelStats { cycles: 10, rounds: 2, ..KernelStats::default() };
        let b = KernelStats { cycles: 5, rounds: 1, ..KernelStats::default() };
        a.merge_sequential(&b);
        assert_eq!(a.cycles, 15);
        assert_eq!(a.rounds, 3);
    }

    #[test]
    fn fault_counters_survive_both_merges() {
        let mut a = KernelStats { fault_retries: 2, fault_cycles: 100, ..KernelStats::default() };
        let b = KernelStats {
            fault_retries: 1,
            fault_watchdog_kills: 3,
            fault_degraded_blocks: 1,
            fault_cycles: 50,
            ..KernelStats::default()
        };
        a.absorb_block(&b);
        assert_eq!(a.fault_retries, 3);
        assert_eq!(a.fault_watchdog_kills, 3);
        assert_eq!(a.fault_degraded_blocks, 1);
        assert_eq!(a.fault_cycles, 150);
        a.merge_sequential(&b);
        assert_eq!(a.fault_retries, 4);
        assert_eq!(a.fault_cycles, 200);
    }

    #[test]
    fn compact_merge_matches_full_merge_except_round_streams() {
        let mk = || KernelStats {
            cycles: 10,
            rounds: 2,
            alu_ops: 7,
            fault_retries: 1,
            fault_cycles: 3,
            active_per_round: vec![4, 2],
            recovering_per_round: vec![0, 1],
            round_durations: vec![6, 4],
            profile: sample_profile(Phase::SpecExec, 10, 7),
            ..KernelStats::default()
        };
        let mut full = mk();
        full.merge_sequential(&mk());
        let mut compact = mk();
        compact.merge_sequential_compact(&mk());
        // The compact merge keeps its own round streams untouched...
        assert_eq!(compact.active_per_round, vec![4, 2]);
        assert_eq!(compact.round_durations, vec![6, 4]);
        // ...and agrees with the full merge on everything scalar.
        compact.active_per_round = full.active_per_round.clone();
        compact.recovering_per_round = full.recovering_per_round.clone();
        compact.round_durations = full.round_durations.clone();
        assert_eq!(compact, full);
    }

    #[test]
    fn recovery_cycles_per_run() {
        let s = KernelStats { recovery_cycles: 100, recovery_runs: 4, ..KernelStats::default() };
        assert!((s.recovery_cycles_per_run() - 25.0).abs() < 1e-12);
        assert_eq!(KernelStats::default().recovery_cycles_per_run(), 0.0);
    }

    fn sample_profile(phase: Phase, cycles: u64, alu: u64) -> PhaseProfile {
        let mut p = PhaseProfile::default();
        let c = p.get_mut(phase);
        c.cycles = cycles;
        c.rounds = 1;
        c.alu_ops = alu;
        c.active_thread_rounds = 3;
        c.thread_rounds = 4;
        p
    }

    #[test]
    fn phase_indices_match_canonical_order() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        assert_eq!(Phase::Recovery.name(), "recovery");
        assert_eq!(Phase::SpecExec.to_string(), "spec_exec");
    }

    #[test]
    fn profile_block_absorb_sums_events_but_not_cycles() {
        let mut a = sample_profile(Phase::Verify, 10, 7);
        let b = sample_profile(Phase::Verify, 25, 5);
        a.absorb_block(&b);
        let c = a.get(Phase::Verify);
        assert_eq!(c.cycles, 10, "concurrent blocks do not serialize");
        assert_eq!(c.alu_ops, 12);
        assert_eq!(c.rounds, 2);
        assert!((c.utilization() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn profile_sequential_merge_sums_everything() {
        let mut a = sample_profile(Phase::SpecExec, 10, 7);
        let b = sample_profile(Phase::Recovery, 25, 5);
        a.merge_sequential(&b);
        assert_eq!(a.get(Phase::SpecExec).cycles, 10);
        assert_eq!(a.get(Phase::Recovery).cycles, 25);
        assert_eq!(a.total_cycles(), 35);
    }

    #[test]
    fn kernel_stats_merges_propagate_to_the_profile() {
        let mut a = KernelStats {
            cycles: 10,
            profile: sample_profile(Phase::SpecExec, 10, 1),
            ..KernelStats::default()
        };
        let b = KernelStats {
            cycles: 25,
            profile: sample_profile(Phase::Verify, 25, 2),
            ..KernelStats::default()
        };
        a.merge_sequential(&b);
        assert_eq!(a.cycles, 35);
        assert_eq!(a.profile.total_cycles(), a.cycles, "profile partitions cycles");

        let mut c = KernelStats {
            cycles: 10,
            profile: sample_profile(Phase::SpecExec, 10, 1),
            ..KernelStats::default()
        };
        c.absorb_block(&b);
        assert_eq!(c.cycles, 10);
        assert_eq!(c.profile.total_cycles(), 10, "block absorb leaves cycles to the grid merge");
        assert_eq!(c.profile.get(Phase::Verify).alu_ops, 2);
    }

    #[test]
    fn empty_phase_reports_zero_ratios() {
        let c = PhaseCounters::default();
        assert_eq!(c.utilization(), 0.0);
        assert_eq!(c.coalesced_fraction(), 0.0);
    }
}
