//! Structured launch failures.
//!
//! Real CUDA reports `cudaErrorInvalidConfiguration` / `cudaErrorLaunchOutOfResources`
//! when a block shape exceeds an SM's resources; the simulator used to paper
//! over this with a silent 1-resident-block fallback. A [`LaunchError`] makes
//! the failure explicit so callers can shrink the block (or reject the job)
//! instead of silently mis-costing the grid.

use crate::occupancy::BlockRequirements;

/// Why a grid launch was rejected before any block ran, or why a block was
/// killed after it did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LaunchError {
    /// No block of the kernel fits on one SM: even the reported shape's
    /// smallest candidate block exceeds shared memory, the register file, or
    /// the per-block thread cap — on hardware the launch itself would fail.
    UnlaunchableShape {
        /// The offending per-block requirements.
        req: BlockRequirements,
    },
    /// The launch contained no blocks (or no threads). On hardware a
    /// zero-dimension grid is `cudaErrorInvalidConfiguration`; surfacing it
    /// structurally lets serving callers reject an empty batch instead of
    /// panicking deep inside the launcher.
    EmptyGrid,
    /// A block ran past the fault plan's per-kernel watchdog budget and was
    /// killed — the simulated analogue of a driver watchdog timeout. The
    /// recovery layer decides whether to retry or degrade the block.
    WatchdogExpired {
        /// Index of the killed block within its grid.
        block: usize,
        /// Cycles the attempt had consumed when it was killed.
        cycles: u64,
        /// The watchdog budget the attempt exceeded.
        budget: u64,
    },
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchError::UnlaunchableShape { req } => write!(
                f,
                "a single block exceeds the SM's resources: {} threads, {} shared bytes, \
                 {} regs/thread",
                req.threads, req.shared_bytes, req.regs_per_thread
            ),
            LaunchError::EmptyGrid => write!(f, "grid launch has no blocks"),
            LaunchError::WatchdogExpired { block, cycles, budget } => write!(
                f,
                "watchdog killed block {block}: ran {cycles} cycles against a budget of {budget}"
            ),
        }
    }
}

impl std::error::Error for LaunchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_resources() {
        let e = LaunchError::UnlaunchableShape {
            req: BlockRequirements { threads: 7, shared_bytes: 123_456, regs_per_thread: 99 },
        };
        let s = e.to_string();
        assert!(s.contains("exceeds the SM's resources"));
        assert!(s.contains("123456"));
        assert!(s.contains("99"));
    }

    #[test]
    fn watchdog_display_names_block_and_budget() {
        let e = LaunchError::WatchdogExpired { block: 3, cycles: 512, budget: 256 };
        let s = e.to_string();
        assert!(s.contains("watchdog"));
        assert!(s.contains("block 3"));
        assert!(s.contains("512"));
        assert!(s.contains("256"));
        assert!(LaunchError::EmptyGrid.to_string().contains("no blocks"));
    }
}
