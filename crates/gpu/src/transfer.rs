//! Host↔device transfer charging and the copy/compute queue timeline.
//!
//! Real serving never gets its input for free: every batch is DMA-copied
//! over PCIe into device memory before a kernel can touch it, and results
//! are copied back afterwards. This module models both halves:
//!
//! * [`transfer_stats`] turns a copy into a [`KernelStats`] whose cycles are
//!   attributed to [`Phase::Transfer`] — so transfer time flows through the
//!   exact same per-phase accounting (and report schema) as kernel time, and
//!   the profile invariant (per-phase cycles partition the total) holds for
//!   copies just as it does for kernels;
//! * [`DeviceTimeline`] simulates the three hardware queues of an Ampere
//!   part — one host→device copy engine, the compute queue, one
//!   device→host copy engine — as monotone busy-until cursors, which is
//!   what lets a pipeline overlap batch *k+1*'s input copy with batch *k*'s
//!   kernel (CUDA's classic dual-stream double-buffering pattern).
//!
//! The timeline is purely arithmetic over `u64` cycles: no clocks, no host
//! threading, bit-deterministic by construction.

use crate::spec::{DeviceSpec, LinkSpec};
use crate::stats::{KernelStats, Phase};

/// Direction of a host↔device copy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CopyDirection {
    /// Host memory → device global memory (batch inputs).
    HostToDevice,
    /// Device global memory → host memory (batch results).
    DeviceToHost,
}

impl CopyDirection {
    /// Stable snake_case name for reports.
    pub fn name(self) -> &'static str {
        match self {
            CopyDirection::HostToDevice => "h2d",
            CopyDirection::DeviceToHost => "d2h",
        }
    }
}

/// Builds the [`KernelStats`] of one host↔device copy of `bytes` bytes:
/// `cycles = spec.copy_cycles(bytes)`, all of it attributed to
/// [`Phase::Transfer`], with the DMA traffic counted as global transactions
/// (the copy engine writes device memory in coalesced segments).
///
/// The returned stats satisfy the profile invariant — per-phase cycles sum
/// to `cycles` exactly — so they can be merged into kernel stats with
/// [`KernelStats::merge_sequential`] without breaking any partition check.
pub fn transfer_stats(spec: &DeviceSpec, bytes: usize) -> KernelStats {
    let cycles = spec.copy_cycles(bytes);
    let transactions = (bytes as u64).div_ceil(spec.global_segment_bytes.max(1));
    let mut stats = KernelStats {
        cycles,
        rounds: 1,
        global_transactions: transactions,
        ..KernelStats::default()
    };
    let pc = stats.profile.get_mut(Phase::Transfer);
    pc.cycles = cycles;
    pc.rounds = 1;
    pc.global_transactions = transactions;
    stats
}

/// Builds the [`KernelStats`] of one cross-fabric copy of `bytes` bytes
/// priced on an attach link instead of the device's own copy engine:
/// `cycles = link.copy_cycles(bytes)`, all attributed to
/// [`Phase::Transfer`], with the DMA traffic coalesced by the *receiving*
/// device's segment geometry. This is what a failover migration costs —
/// checkpoint state crosses the fabric on the survivor's attach link and
/// lands in its memory as an ordinary H2D copy. The profile invariant
/// (per-phase cycles partition the total) holds, so the stats merge into
/// a device's report with [`KernelStats::merge_sequential`].
pub fn link_transfer_stats(link: &LinkSpec, spec: &DeviceSpec, bytes: usize) -> KernelStats {
    let cycles = link.copy_cycles(bytes);
    let transactions = (bytes as u64).div_ceil(spec.global_segment_bytes.max(1));
    let mut stats = KernelStats {
        cycles,
        rounds: 1,
        global_transactions: transactions,
        ..KernelStats::default()
    };
    let pc = stats.profile.get_mut(Phase::Transfer);
    pc.cycles = cycles;
    pc.rounds = 1;
    pc.global_transactions = transactions;
    stats
}

/// A half-open busy interval `[start, end)` on one engine's timeline.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Span {
    /// Cycle the operation began.
    pub start: u64,
    /// Cycle the operation completed (engine free again).
    pub end: u64,
}

impl Span {
    /// The operation's duration in cycles.
    pub fn duration(&self) -> u64 {
        self.end - self.start
    }

    /// Cycles this span overlaps another.
    pub fn overlap(&self, other: &Span) -> u64 {
        self.end.min(other.end).saturating_sub(self.start.max(other.start))
    }
}

/// One in-order hardware queue: operations start at
/// `max(ready_at, engine free)` and occupy the engine for their duration.
#[derive(Clone, Debug, Default)]
pub struct Engine {
    free_at: u64,
}

impl Engine {
    /// Schedules an operation that becomes ready at `ready_at` and runs for
    /// `duration` cycles; returns its span and advances the engine cursor.
    pub fn schedule(&mut self, ready_at: u64, duration: u64) -> Span {
        let start = ready_at.max(self.free_at);
        let end = start + duration;
        self.free_at = end;
        Span { start, end }
    }

    /// The cycle at which the engine next becomes free.
    pub fn free_at(&self) -> u64 {
        self.free_at
    }
}

/// The three queues a serving pipeline schedules against: H2D copy engine,
/// compute queue, D2H copy engine.
///
/// With `overlap` enabled the queues advance independently — a copy and a
/// kernel that are both ready proceed concurrently, exactly what dual copy
/// engines buy. With `overlap` disabled every operation funnels through one
/// serialized queue (the naive synchronous `cudaMemcpy` pipeline), which is
/// the baseline overlap is measured against.
#[derive(Clone, Debug)]
pub struct DeviceTimeline {
    engines: [Engine; 3],
    overlap: bool,
}

impl DeviceTimeline {
    /// A fresh timeline at cycle 0.
    pub fn new(overlap: bool) -> Self {
        DeviceTimeline {
            engines: [Engine::default(), Engine::default(), Engine::default()],
            overlap,
        }
    }

    /// Whether copies and compute may proceed concurrently.
    pub fn overlap(&self) -> bool {
        self.overlap
    }

    fn on(&mut self, queue: usize, ready_at: u64, duration: u64) -> Span {
        let queue = if self.overlap { queue } else { 0 };
        self.engines[queue].schedule(ready_at, duration)
    }

    /// Schedules a host→device copy.
    pub fn h2d(&mut self, ready_at: u64, duration: u64) -> Span {
        self.on(0, ready_at, duration)
    }

    /// Schedules a kernel on the compute queue.
    pub fn compute(&mut self, ready_at: u64, duration: u64) -> Span {
        self.on(1, ready_at, duration)
    }

    /// Schedules a device→host copy.
    pub fn d2h(&mut self, ready_at: u64, duration: u64) -> Span {
        self.on(2, ready_at, duration)
    }

    /// The cycle the H2D copy engine next becomes free — what a dispatcher
    /// consults to decide whether batching longer would leave the device
    /// idle.
    pub fn h2d_free_at(&self) -> u64 {
        self.engines[0].free_at()
    }

    /// The cycle the compute queue next becomes free.
    pub fn compute_free_at(&self) -> u64 {
        self.engines[if self.overlap { 1 } else { 0 }].free_at()
    }

    /// The cycle the D2H copy engine next becomes free. Together with
    /// [`DeviceTimeline::h2d_free_at`] this bounds the start of every future
    /// copy, which is what lets a streaming pipeline retire overlap
    /// accounting state instead of retaining every span.
    pub fn d2h_free_at(&self) -> u64 {
        self.engines[if self.overlap { 2 } else { 0 }].free_at()
    }

    /// The latest cycle any queue is busy until — the pipeline makespan so
    /// far.
    pub fn horizon(&self) -> u64 {
        self.engines.iter().map(Engine::free_at).max().unwrap_or(0)
    }

    /// The raw busy-until cursors of the three queues `[h2d, compute, d2h]`
    /// in physical order (no overlap remapping). Together with the `overlap`
    /// flag this is the timeline's *entire* state, which is what makes a
    /// serving engine checkpointable: a timeline rebuilt via
    /// [`DeviceTimeline::from_frontiers`] schedules every future operation
    /// identically.
    pub fn queue_frontiers(&self) -> [u64; 3] {
        [self.engines[0].free_at(), self.engines[1].free_at(), self.engines[2].free_at()]
    }

    /// Reconstructs a timeline from a [`DeviceTimeline::queue_frontiers`]
    /// snapshot. The inverse of `queue_frontiers` for the same `overlap`
    /// flag: all future scheduling decisions are bit-identical to the
    /// original timeline's.
    pub fn from_frontiers(overlap: bool, frontiers: [u64; 3]) -> Self {
        DeviceTimeline {
            engines: [
                Engine { free_at: frontiers[0] },
                Engine { free_at: frontiers[1] },
                Engine { free_at: frontiers[2] },
            ],
            overlap,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_stats_land_in_the_transfer_phase() {
        let spec = DeviceSpec::test_unit(); // copy: 1 + bytes, 4-byte segments
        let s = transfer_stats(&spec, 10);
        assert_eq!(s.cycles, 11);
        assert_eq!(s.global_transactions, 3);
        assert_eq!(s.profile.get(Phase::Transfer).cycles, s.cycles);
        assert_eq!(s.profile.get(Phase::Transfer).global_transactions, 3);
        assert_eq!(s.profile.total_cycles(), s.cycles, "profile invariant holds for copies");
    }

    #[test]
    fn transfer_stats_merge_into_kernel_stats_cleanly() {
        let spec = DeviceSpec::test_unit();
        let mut run = KernelStats { cycles: 40, ..KernelStats::default() };
        run.profile.get_mut(Phase::SpecExec).cycles = 40;
        run.merge_sequential(&transfer_stats(&spec, 9));
        assert_eq!(run.cycles, 50);
        assert_eq!(run.profile.total_cycles(), run.cycles);
        assert_eq!(run.profile.get(Phase::Transfer).cycles, 10);
    }

    #[test]
    fn engines_serialize_their_own_queue() {
        let mut e = Engine::default();
        let a = e.schedule(0, 10);
        let b = e.schedule(5, 10);
        assert_eq!(a, Span { start: 0, end: 10 });
        assert_eq!(b, Span { start: 10, end: 20 }, "ready at 5 but engine busy until 10");
        let c = e.schedule(50, 1);
        assert_eq!(c.start, 50, "idle gaps are allowed");
    }

    #[test]
    fn overlap_runs_copy_and_compute_concurrently() {
        let mut t = DeviceTimeline::new(true);
        let c0 = t.h2d(0, 10);
        let k0 = t.compute(c0.end, 100);
        let c1 = t.h2d(c0.end, 10); // next batch's copy rides under the kernel
        assert_eq!(k0, Span { start: 10, end: 110 });
        assert_eq!(c1, Span { start: 10, end: 20 });
        assert_eq!(c1.overlap(&k0), 10);
        assert_eq!(t.horizon(), 110);
    }

    #[test]
    fn no_overlap_serializes_everything() {
        let mut t = DeviceTimeline::new(false);
        let c0 = t.h2d(0, 10);
        let k0 = t.compute(c0.end, 100);
        let c1 = t.h2d(c0.end, 10);
        assert_eq!(c1, Span { start: 110, end: 120 }, "copies queue behind the kernel");
        assert_eq!(t.horizon(), 120);
        assert_eq!(c1.overlap(&k0), 0);
    }

    #[test]
    fn frontier_round_trip_preserves_scheduling() {
        for overlap in [false, true] {
            let mut t = DeviceTimeline::new(overlap);
            t.h2d(0, 10);
            t.compute(10, 100);
            t.d2h(110, 7);
            let mut r = DeviceTimeline::from_frontiers(overlap, t.queue_frontiers());
            assert_eq!(r.queue_frontiers(), t.queue_frontiers());
            assert_eq!(r.horizon(), t.horizon());
            assert_eq!(r.h2d(0, 5), t.h2d(0, 5), "future scheduling identical");
            assert_eq!(r.compute(0, 5), t.compute(0, 5));
            assert_eq!(r.d2h(0, 5), t.d2h(0, 5));
        }
    }

    #[test]
    fn span_overlap_arithmetic() {
        let a = Span { start: 0, end: 10 };
        assert_eq!(a.overlap(&Span { start: 5, end: 30 }), 5);
        assert_eq!(a.overlap(&Span { start: 20, end: 30 }), 0);
        assert_eq!(a.duration(), 10);
    }
}
