//! CUDA-event-like timing over simulated kernels.
//!
//! The paper reports "GPU kernel time collected by using CUDA events"
//! (§V-A). [`EventTimer`] provides the same interface shape over the
//! simulator: record kernels between `start` and `stop`, read the elapsed
//! simulated time. [`EventTimer::record_named`] additionally groups kernels
//! into named spans (one span per logical launch site, like an NVTX range),
//! each carrying the per-[`Phase`](crate::stats::Phase) breakdown of the
//! kernels recorded under it.

use crate::spec::DeviceSpec;
use crate::stats::{KernelStats, PhaseProfile};

/// One named span on the timer's timeline: the aggregate of every kernel
/// recorded under the same name, with its phase breakdown. The NVTX-range
/// analogue for the simulator.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct KernelSpan {
    /// The span's name (the launch site, e.g. `"predict"` or `"vr"`).
    pub name: String,
    /// Total simulated cycles of the kernels recorded under this span.
    pub cycles: u64,
    /// Number of kernels recorded under this span.
    pub kernels: u64,
    /// Per-phase breakdown of the span's kernels; phase cycles sum to
    /// `cycles` (sequential merge of the recorded kernels' profiles).
    pub profile: PhaseProfile,
}

/// Accumulates the simulated time of a sequence of kernel launches, like a
/// CUDA event pair bracketing them on a stream.
#[derive(Clone, Debug, Default)]
pub struct EventTimer {
    cycles: u64,
    kernels: u64,
    profile: PhaseProfile,
    spans: Vec<KernelSpan>,
}

impl EventTimer {
    /// A fresh timer at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a completed kernel (its cycles append to the stream timeline).
    pub fn record(&mut self, stats: &KernelStats) {
        self.cycles += stats.cycles;
        self.kernels += 1;
        self.profile.merge_sequential(&stats.profile);
    }

    /// Records a completed kernel under the named span, creating the span on
    /// first use. Spans keep first-recorded order; recording the same name
    /// again extends that span (kernels on a stream serialize, so cycles and
    /// profiles merge sequentially).
    pub fn record_named(&mut self, name: &str, stats: &KernelStats) {
        self.record(stats);
        let span = match self.spans.iter_mut().find(|s| s.name == name) {
            Some(span) => span,
            None => {
                self.spans.push(KernelSpan { name: name.to_string(), ..KernelSpan::default() });
                self.spans.last_mut().expect("span just pushed")
            }
        };
        span.cycles += stats.cycles;
        span.kernels += 1;
        span.profile.merge_sequential(&stats.profile);
    }

    /// Total elapsed simulated cycles.
    pub fn elapsed_cycles(&self) -> u64 {
        self.cycles
    }

    /// Total elapsed simulated time in microseconds on `spec`.
    pub fn elapsed_us(&self, spec: &DeviceSpec) -> f64 {
        spec.cycles_to_us(self.cycles)
    }

    /// Number of kernels recorded.
    pub fn kernel_count(&self) -> u64 {
        self.kernels
    }

    /// Aggregate per-phase breakdown of every kernel recorded (named or
    /// not); phase cycles sum to [`EventTimer::elapsed_cycles`] when every
    /// recorded kernel upheld the profile invariant.
    pub fn profile(&self) -> &PhaseProfile {
        &self.profile
    }

    /// The named spans, in first-recorded order.
    pub fn spans(&self) -> &[KernelSpan] {
        &self.spans
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Phase;

    fn staged(phase: Phase, cycles: u64) -> KernelStats {
        let mut s = KernelStats { cycles, ..KernelStats::default() };
        s.profile.get_mut(phase).cycles = cycles;
        s
    }

    #[test]
    fn timer_accumulates_kernels() {
        let mut t = EventTimer::new();
        t.record(&KernelStats { cycles: 100, ..KernelStats::default() });
        t.record(&KernelStats { cycles: 50, ..KernelStats::default() });
        assert_eq!(t.elapsed_cycles(), 150);
        assert_eq!(t.kernel_count(), 2);
    }

    #[test]
    fn elapsed_us_uses_clock() {
        let mut t = EventTimer::new();
        t.record(&KernelStats { cycles: 1000, ..KernelStats::default() });
        let spec = DeviceSpec::test_unit();
        assert!((t.elapsed_us(&spec) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn named_spans_group_kernels_and_nest_phases() {
        let mut t = EventTimer::new();
        t.record_named("exec", &staged(Phase::SpecExec, 100));
        t.record_named("verify", &staged(Phase::Verify, 30));
        t.record_named("exec", &staged(Phase::Recovery, 20));
        assert_eq!(t.elapsed_cycles(), 150);
        assert_eq!(t.kernel_count(), 3);
        let spans = t.spans();
        assert_eq!(spans.len(), 2, "same name extends the span");
        assert_eq!(spans[0].name, "exec");
        assert_eq!(spans[0].kernels, 2);
        assert_eq!(spans[0].cycles, 120);
        assert_eq!(spans[0].profile.get(Phase::SpecExec).cycles, 100);
        assert_eq!(spans[0].profile.get(Phase::Recovery).cycles, 20);
        assert_eq!(spans[1].name, "verify");
        assert_eq!(spans[1].profile.get(Phase::Verify).cycles, 30);
        // The aggregate profile partitions the timeline.
        assert_eq!(t.profile().total_cycles(), t.elapsed_cycles());
    }
}
