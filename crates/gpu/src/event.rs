//! CUDA-event-like timing over simulated kernels.
//!
//! The paper reports "GPU kernel time collected by using CUDA events"
//! (§V-A). [`EventTimer`] provides the same interface shape over the
//! simulator: record kernels between `start` and `stop`, read the elapsed
//! simulated time.

use crate::spec::DeviceSpec;
use crate::stats::KernelStats;

/// Accumulates the simulated time of a sequence of kernel launches, like a
/// CUDA event pair bracketing them on a stream.
#[derive(Clone, Debug, Default)]
pub struct EventTimer {
    cycles: u64,
    kernels: u64,
}

impl EventTimer {
    /// A fresh timer at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a completed kernel (its cycles append to the stream timeline).
    pub fn record(&mut self, stats: &KernelStats) {
        self.cycles += stats.cycles;
        self.kernels += 1;
    }

    /// Total elapsed simulated cycles.
    pub fn elapsed_cycles(&self) -> u64 {
        self.cycles
    }

    /// Total elapsed simulated time in microseconds on `spec`.
    pub fn elapsed_us(&self, spec: &DeviceSpec) -> f64 {
        spec.cycles_to_us(self.cycles)
    }

    /// Number of kernels recorded.
    pub fn kernel_count(&self) -> u64 {
        self.kernels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_accumulates_kernels() {
        let mut t = EventTimer::new();
        t.record(&KernelStats { cycles: 100, ..KernelStats::default() });
        t.record(&KernelStats { cycles: 50, ..KernelStats::default() });
        assert_eq!(t.elapsed_cycles(), 150);
        assert_eq!(t.kernel_count(), 2);
    }

    #[test]
    fn elapsed_us_uses_clock() {
        let mut t = EventTimer::new();
        t.record(&KernelStats { cycles: 1000, ..KernelStats::default() });
        let spec = DeviceSpec::test_unit();
        assert!((t.elapsed_us(&spec) - 1.0).abs() < 1e-9);
    }
}
