//! Grid launches: multiple independent thread blocks.
//!
//! A single cooperative block (shared memory and `__syncthreads()` are
//! block-scoped) caps a kernel at `max_threads_per_block` threads — and one
//! block is not a GPU: the RTX 3090 has 82 SMs. [`launch_grid`] scales a
//! round-based kernel past that limit by partitioning its threads into
//! blocks, simulating the blocks **concurrently on host worker threads**
//! (a rayon pool — blocks never communicate, so they are embarrassingly
//! parallel), and merging the per-block [`KernelStats`] deterministically:
//!
//! * counters (ALU, memory, atomics, recovery) are summed;
//! * per-round event streams are concatenated in block order;
//! * `cycles` follows the SM-occupancy wave model (see [`crate::occupancy`]):
//!   blocks are scheduled `resident × n_sms` at a time, each wave lasts as
//!   long as its slowest block, and waves serialize.
//!
//! The merge depends only on block boundaries and kernel behaviour — never
//! on host scheduling — so the result is bit-identical for every rayon
//! worker count, including 1 (the sequential reference).
//!
//! [`launch_blocks`] is the lower-level API for heterogeneous grids: the
//! caller brings one pre-built kernel per block (used by throughput-mode
//! batch scans, where blocks differ in shape).

use rayon::prelude::*;

use crate::kernel::{launch, run_block, RoundKernel};
use crate::occupancy::{max_resident_blocks, BlockRequirements};
use crate::spec::DeviceSpec;
use crate::stats::KernelStats;

/// The shape of one block within a grid launch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockDim {
    /// Position of this block in the grid (submission order).
    pub index: usize,
    /// The *global* thread ids this block hosts.
    pub tids: std::ops::Range<usize>,
}

impl BlockDim {
    /// Number of threads in this block.
    pub fn len(&self) -> usize {
        self.tids.len()
    }

    /// Whether the block is empty (never true for dims built by
    /// [`block_dims`]).
    pub fn is_empty(&self) -> bool {
        self.tids.is_empty()
    }
}

/// Partitions `n_threads` global threads into blocks of at most
/// `max_threads_per_block`: every block full except possibly the last.
pub fn block_dims(spec: &DeviceSpec, n_threads: usize) -> Vec<BlockDim> {
    assert!(n_threads > 0, "kernel needs at least one thread");
    let per_block = spec.max_threads_per_block.max(1) as usize;
    (0..n_threads.div_ceil(per_block))
        .map(|index| {
            let lo = index * per_block;
            BlockDim { index, tids: lo..((lo + per_block).min(n_threads)) }
        })
        .collect()
}

/// A kernel that can hand out its state as per-block [`RoundKernel`]s.
///
/// `split` receives the grid's block dims and must return one block kernel
/// per dim. Each block kernel sees the *global* thread ids of its dim in
/// `round`, and borrows a disjoint slice of the parent's state — mirroring
/// how a CUDA grid partitions its working set, and exactly what lets the
/// simulator run blocks on concurrent host threads. Results written through
/// those borrows land in the parent when the blocks drop.
pub trait GridKernel {
    /// The per-block kernel, borrowing from `self` for `'s`.
    type Block<'s>: RoundKernel + Send
    where
        Self: 's;

    /// Splits `self` into one block kernel per entry of `dims`.
    fn split<'s>(&'s mut self, dims: &[BlockDim]) -> Vec<Self::Block<'s>>;
}

/// Launches `kernel` with `n_threads` threads as a grid of blocks of
/// `max_threads_per_block`, simulating blocks concurrently and merging
/// their statistics deterministically (see the module docs).
///
/// The single-block case reduces exactly to [`launch`]: same stats, same
/// cycles. The block simulations run on the ambient rayon pool; the merged
/// result is bit-identical for every pool size.
///
/// ```
/// use gspecpal_gpu::{
///     launch_grid, BlockDim, DeviceSpec, GridKernel, RoundKernel, RoundOutcome, ThreadCtx,
/// };
///
/// /// Every thread does ten ALU ops in a single round.
/// struct Burn;
/// impl RoundKernel for Burn {
///     fn round(&mut self, _tid: usize, ctx: &mut ThreadCtx<'_>) -> RoundOutcome {
///         ctx.alu(10);
///         RoundOutcome::ACTIVE
///     }
///     fn after_sync(&mut self, _round: u64) -> bool { false }
/// }
///
/// /// Stateless kernel: every block is another `Burn`.
/// struct BurnGrid;
/// impl GridKernel for BurnGrid {
///     type Block<'s> = Burn;
///     fn split<'s>(&'s mut self, dims: &[BlockDim]) -> Vec<Burn> {
///         dims.iter().map(|_| Burn).collect()
///     }
/// }
///
/// // 8192 threads on a 64-thread-block device: a 128-block grid.
/// let spec = DeviceSpec::test_unit();
/// let stats = launch_grid(&spec, 8192, &mut BurnGrid);
/// assert_eq!(stats.alu_ops, 81_920);
/// ```
pub fn launch_grid<G: GridKernel>(
    spec: &DeviceSpec,
    n_threads: usize,
    kernel: &mut G,
) -> KernelStats {
    let dims = block_dims(spec, n_threads);
    let blocks = kernel.split(&dims);
    assert_eq!(blocks.len(), dims.len(), "GridKernel::split must return one block kernel per dim");
    let width = dims[0].len() as u32;
    let work: Vec<(BlockDim, G::Block<'_>)> = dims.into_iter().zip(blocks).collect();
    let per_block: Vec<KernelStats> = work
        .into_par_iter()
        .map(|(dim, mut block)| run_block(spec, dim.tids.start, dim.len(), &mut block))
        .collect();
    merge_grid(spec, width, &per_block)
}

/// Merges per-block stats into grid stats: counters summed, event streams
/// concatenated in block order, cycles from the occupancy wave model.
fn merge_grid(spec: &DeviceSpec, block_width: u32, per_block: &[KernelStats]) -> KernelStats {
    let mut merged = KernelStats::default();
    for stats in per_block {
        merged.absorb_block(stats);
    }
    let resident = max_resident_blocks(spec, &BlockRequirements::light(block_width)).max(1);
    let per_wave = (resident * spec.n_sms.max(1)) as usize;
    merged.cycles = per_block
        .chunks(per_wave)
        .map(|wave| wave.iter().map(|b| b.cycles).max().unwrap_or(0))
        .sum();
    merged
}

/// Statistics of a whole heterogeneous grid launch ([`launch_blocks`]).
#[derive(Clone, Debug)]
pub struct GridStats {
    /// Per-block kernel statistics, in submission order.
    pub blocks: Vec<KernelStats>,
    /// Number of scheduling waves the grid needed.
    pub waves: u32,
    /// Grid completion time in cycles (sum of wave maxima).
    pub cycles: u64,
}

impl GridStats {
    /// Aggregate global transactions across all blocks.
    pub fn total_global_transactions(&self) -> u64 {
        self.blocks.iter().map(|b| b.global_transactions).sum()
    }

    /// The slowest single block.
    pub fn max_block_cycles(&self) -> u64 {
        self.blocks.iter().map(|b| b.cycles).max().unwrap_or(0)
    }
}

/// Launches one block per kernel in `blocks` (each with its thread count)
/// and schedules them onto the device's SMs in waves, one resident block
/// per SM. Blocks simulate concurrently on the rayon pool; per-block stats
/// and wave accounting are deterministic regardless of pool size.
pub fn launch_blocks<K: RoundKernel + Send>(
    spec: &DeviceSpec,
    blocks: &mut [(usize, K)],
) -> GridStats {
    launch_block_waves(spec, blocks, spec.n_sms.max(1) as usize)
}

/// Like [`launch_blocks`], with the wave width derived from the kernel's
/// resource requirements via the occupancy calculator: blocks per wave =
/// `max_resident_blocks(spec, req) × n_sms`.
pub fn launch_blocks_occupancy<K: RoundKernel + Send>(
    spec: &DeviceSpec,
    blocks: &mut [(usize, K)],
    req: &BlockRequirements,
) -> GridStats {
    let resident = max_resident_blocks(spec, req);
    assert!(resident > 0, "a single block exceeds the SM's resources: {req:?}");
    launch_block_waves(spec, blocks, (resident * spec.n_sms.max(1)) as usize)
}

fn launch_block_waves<K: RoundKernel + Send>(
    spec: &DeviceSpec,
    blocks: &mut [(usize, K)],
    per_wave: usize,
) -> GridStats {
    assert!(!blocks.is_empty(), "a grid needs at least one block");
    let per_wave = per_wave.max(1);
    let work: Vec<&mut (usize, K)> = blocks.iter_mut().collect();
    let stats: Vec<KernelStats> =
        work.into_par_iter().map(|(n_threads, kernel)| launch(spec, *n_threads, kernel)).collect();
    let mut cycles = 0u64;
    let mut waves = 0u32;
    for wave in stats.chunks(per_wave) {
        cycles += wave.iter().map(|s| s.cycles).max().unwrap_or(0);
        waves += 1;
    }
    GridStats { blocks: stats, waves, cycles }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{RoundOutcome, ThreadCtx};

    struct Work(u64);

    impl RoundKernel for Work {
        fn round(&mut self, _tid: usize, ctx: &mut ThreadCtx<'_>) -> RoundOutcome {
            ctx.alu(self.0);
            RoundOutcome::ACTIVE
        }
        fn after_sync(&mut self, _round: u64) -> bool {
            false
        }
    }

    #[test]
    fn one_wave_runs_blocks_concurrently() {
        let spec = DeviceSpec::test_unit(); // 1 SM
        let mut blocks = vec![(4usize, Work(10))];
        let g = launch_blocks(&spec, &mut blocks);
        assert_eq!(g.waves, 1);
        assert_eq!(g.cycles, g.blocks[0].cycles);
    }

    #[test]
    fn waves_serialize_beyond_sm_count() {
        let mut spec = DeviceSpec::test_unit();
        spec.n_sms = 2;
        // 5 equal blocks on 2 SMs: 3 waves, each gated by one block.
        let mut blocks: Vec<(usize, Work)> = (0..5).map(|_| (2usize, Work(7))).collect();
        let g = launch_blocks(&spec, &mut blocks);
        assert_eq!(g.waves, 3);
        let per_block = g.blocks[0].cycles;
        assert_eq!(g.cycles, 3 * per_block);
        assert_eq!(g.blocks.len(), 5);
    }

    #[test]
    fn wave_duration_is_gated_by_the_slowest_block() {
        let mut spec = DeviceSpec::test_unit();
        spec.n_sms = 2;
        let mut blocks = vec![(1usize, Work(5)), (1usize, Work(500))];
        let g = launch_blocks(&spec, &mut blocks);
        assert_eq!(g.waves, 1);
        assert_eq!(g.cycles, g.max_block_cycles());
        assert!(g.cycles >= 500);
    }

    #[test]
    fn occupancy_widens_waves_for_light_kernels() {
        let mut spec = DeviceSpec::test_unit(); // 1 SM, max 4 blocks/SM
        spec.n_sms = 1;
        // 8 light blocks of 2 threads: occupancy allows 4 resident -> 2 waves.
        let req = BlockRequirements { threads: 2, shared_bytes: 0, regs_per_thread: 8 };
        let mut blocks: Vec<(usize, Work)> = (0..8).map(|_| (2usize, Work(9))).collect();
        let g = launch_blocks_occupancy(&spec, &mut blocks, &req);
        assert_eq!(g.waves, 2);
        // The naive one-block-per-SM scheduler needs 8 waves.
        let mut blocks: Vec<(usize, Work)> = (0..8).map(|_| (2usize, Work(9))).collect();
        let naive = launch_blocks(&spec, &mut blocks);
        assert_eq!(naive.waves, 8);
        assert!(g.cycles < naive.cycles);
    }

    #[test]
    #[should_panic(expected = "exceeds the SM's resources")]
    fn occupancy_rejects_oversized_blocks() {
        let spec = DeviceSpec::test_unit();
        let req =
            BlockRequirements { threads: 2, shared_bytes: usize::MAX / 2, regs_per_thread: 8 };
        let mut blocks = vec![(2usize, Work(1))];
        let _ = launch_blocks_occupancy(&spec, &mut blocks, &req);
    }

    #[test]
    fn aggregate_counters_sum_blocks() {
        struct Loader;
        impl RoundKernel for Loader {
            fn round(&mut self, tid: usize, ctx: &mut ThreadCtx<'_>) -> RoundOutcome {
                ctx.global(0, tid as u64 * 64, 1);
                RoundOutcome::ACTIVE
            }
            fn after_sync(&mut self, _round: u64) -> bool {
                false
            }
        }
        let spec = DeviceSpec::test_unit();
        let mut blocks = vec![(3usize, Loader), (3usize, Loader)];
        let g = launch_blocks(&spec, &mut blocks);
        assert_eq!(g.total_global_transactions(), 6);
    }

    /// Grid kernel: thread `tid` writes `tid` into its slot and charges
    /// `tid % 7` ALU ops — verifies global tids, disjoint splitting, and
    /// result write-back through the block borrows.
    struct SlotGrid {
        slots: Vec<usize>,
    }

    struct SlotBlock<'s> {
        base: usize,
        slots: &'s mut [usize],
    }

    impl RoundKernel for SlotBlock<'_> {
        fn round(&mut self, tid: usize, ctx: &mut ThreadCtx<'_>) -> RoundOutcome {
            ctx.alu((tid % 7) as u64);
            self.slots[tid - self.base] = tid;
            RoundOutcome::ACTIVE
        }
        fn after_sync(&mut self, _round: u64) -> bool {
            false
        }
    }

    impl GridKernel for SlotGrid {
        type Block<'s> = SlotBlock<'s>;
        fn split<'s>(&'s mut self, dims: &[BlockDim]) -> Vec<SlotBlock<'s>> {
            let mut rest: &mut [usize] = &mut self.slots;
            let mut out = Vec::with_capacity(dims.len());
            for dim in dims {
                let (mine, tail) = rest.split_at_mut(dim.len());
                out.push(SlotBlock { base: dim.tids.start, slots: mine });
                rest = tail;
            }
            out
        }
    }

    #[test]
    fn grid_passes_global_tids_and_writes_back() {
        let spec = DeviceSpec::test_unit(); // 64-thread blocks
        let n = 1000;
        let mut kernel = SlotGrid { slots: vec![usize::MAX; n] };
        let stats = launch_grid(&spec, n, &mut kernel);
        assert_eq!(kernel.slots, (0..n).collect::<Vec<_>>());
        assert_eq!(stats.alu_ops, (0..n as u64).map(|t| t % 7).sum::<u64>());
        // 1000 threads over 64-thread blocks: 16 blocks.
        assert_eq!(stats.active_per_round.len(), 16);
        assert_eq!(stats.active_per_round.iter().sum::<u32>(), 1000);
    }

    #[test]
    fn single_block_grid_equals_launch() {
        let spec = DeviceSpec::test_unit();
        let direct = launch(&spec, 48, &mut Work(13));
        let via_grid = launch_grid(&spec, 48, &mut WorkGrid(13));
        assert_eq!(via_grid, direct);
    }

    struct WorkGrid(u64);
    impl GridKernel for WorkGrid {
        type Block<'s> = Work;
        fn split(&mut self, dims: &[BlockDim]) -> Vec<Work> {
            dims.iter().map(|_| Work(self.0)).collect()
        }
    }

    #[test]
    fn grid_cycles_follow_the_wave_model() {
        let mut spec = DeviceSpec::test_unit();
        spec.n_sms = 2;
        spec.max_blocks_per_sm = 1;
        spec.max_threads_per_sm = spec.max_threads_per_block;
        // 5 full blocks on 2 SMs, one resident each: 3 waves.
        let n = 5 * spec.max_threads_per_block as usize;
        let stats = launch_grid(&spec, n, &mut WorkGrid(7));
        let one_block = launch(&spec, spec.max_threads_per_block as usize, &mut Work(7));
        assert_eq!(stats.cycles, 3 * one_block.cycles);
    }

    #[test]
    fn grid_stats_identical_across_pool_sizes() {
        let spec = DeviceSpec::test_unit();
        let n = 777;
        let run = |workers: usize| {
            let pool = rayon::ThreadPoolBuilder::new().num_threads(workers).build().unwrap();
            pool.install(|| {
                let mut kernel = SlotGrid { slots: vec![0; n] };
                (launch_grid(&spec, n, &mut kernel), kernel.slots)
            })
        };
        let (seq_stats, seq_slots) = run(1);
        for workers in [2, 4, 8] {
            let (stats, slots) = run(workers);
            assert_eq!(stats, seq_stats, "{workers} workers");
            assert_eq!(slots, seq_slots, "{workers} workers");
        }
    }
}
