//! Grid launches: multiple independent thread blocks.
//!
//! The latency-sensitive schemes run in a single cooperative block (shared
//! memory and `__syncthreads()` are block-scoped), but throughput-oriented
//! workloads want the whole device: a *grid* of blocks, each with its own
//! barrier domain, scheduled onto the SMs in waves. Blocks never
//! communicate; the grid completes when its slowest wave does.
//!
//! The scheduling model is the classic occupancy picture: with `B` blocks
//! and `S` SMs (one resident block per SM — our blocks are up to 1024
//! threads, which caps residency on Ampere), blocks execute in
//! `ceil(B / S)` waves; each wave's duration is the maximum block time in
//! it, and waves are serialized.

use crate::kernel::{launch, RoundKernel};
use crate::occupancy::{max_resident_blocks, BlockRequirements};
use crate::spec::DeviceSpec;
use crate::stats::KernelStats;

/// Statistics of a whole grid launch.
#[derive(Clone, Debug)]
pub struct GridStats {
    /// Per-block kernel statistics, in submission order.
    pub blocks: Vec<KernelStats>,
    /// Number of scheduling waves the grid needed.
    pub waves: u32,
    /// Grid completion time in cycles (sum of wave maxima).
    pub cycles: u64,
}

impl GridStats {
    /// Aggregate global transactions across all blocks.
    pub fn total_global_transactions(&self) -> u64 {
        self.blocks.iter().map(|b| b.global_transactions).sum()
    }

    /// The slowest single block.
    pub fn max_block_cycles(&self) -> u64 {
        self.blocks.iter().map(|b| b.cycles).max().unwrap_or(0)
    }
}

/// Launches one block per kernel in `blocks` (each with its thread count)
/// and schedules them onto the device's SMs in waves.
pub fn launch_grid<K: RoundKernel>(
    spec: &DeviceSpec,
    blocks: &mut [(usize, K)],
) -> GridStats {
    launch_grid_waves(spec, blocks, spec.n_sms.max(1) as usize)
}

/// Like [`launch_grid`], with the wave width derived from the kernel's
/// resource requirements via the occupancy calculator: blocks per wave =
/// `max_resident_blocks(spec, req) × n_sms`.
pub fn launch_grid_occupancy<K: RoundKernel>(
    spec: &DeviceSpec,
    blocks: &mut [(usize, K)],
    req: &BlockRequirements,
) -> GridStats {
    let resident = max_resident_blocks(spec, req);
    assert!(resident > 0, "a single block exceeds the SM's resources: {req:?}");
    launch_grid_waves(spec, blocks, (resident * spec.n_sms.max(1)) as usize)
}

fn launch_grid_waves<K: RoundKernel>(
    spec: &DeviceSpec,
    blocks: &mut [(usize, K)],
    per_wave: usize,
) -> GridStats {
    assert!(!blocks.is_empty(), "a grid needs at least one block");
    let per_wave = per_wave.max(1);
    let mut stats = Vec::with_capacity(blocks.len());
    let mut cycles = 0u64;
    let mut waves = 0u32;
    for wave in blocks.chunks_mut(per_wave) {
        let mut wave_max = 0u64;
        for (n_threads, kernel) in wave.iter_mut() {
            let s = launch(spec, *n_threads, kernel);
            wave_max = wave_max.max(s.cycles);
            stats.push(s);
        }
        cycles += wave_max;
        waves += 1;
    }
    GridStats { blocks: stats, waves, cycles }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{RoundOutcome, ThreadCtx};

    struct Work(u64);

    impl RoundKernel for Work {
        fn round(&mut self, _tid: usize, ctx: &mut ThreadCtx<'_>) -> RoundOutcome {
            ctx.alu(self.0);
            RoundOutcome::ACTIVE
        }
        fn after_sync(&mut self, _round: u64) -> bool {
            false
        }
    }

    #[test]
    fn one_wave_runs_blocks_concurrently() {
        let spec = DeviceSpec::test_unit(); // 1 SM
        let mut blocks = vec![(4usize, Work(10))];
        let g = launch_grid(&spec, &mut blocks);
        assert_eq!(g.waves, 1);
        assert_eq!(g.cycles, g.blocks[0].cycles);
    }

    #[test]
    fn waves_serialize_beyond_sm_count() {
        let mut spec = DeviceSpec::test_unit();
        spec.n_sms = 2;
        // 5 equal blocks on 2 SMs: 3 waves, each gated by one block.
        let mut blocks: Vec<(usize, Work)> = (0..5).map(|_| (2usize, Work(7))).collect();
        let g = launch_grid(&spec, &mut blocks);
        assert_eq!(g.waves, 3);
        let per_block = g.blocks[0].cycles;
        assert_eq!(g.cycles, 3 * per_block);
        assert_eq!(g.blocks.len(), 5);
    }

    #[test]
    fn wave_duration_is_gated_by_the_slowest_block() {
        let mut spec = DeviceSpec::test_unit();
        spec.n_sms = 2;
        let mut blocks = vec![(1usize, Work(5)), (1usize, Work(500))];
        let g = launch_grid(&spec, &mut blocks);
        assert_eq!(g.waves, 1);
        assert_eq!(g.cycles, g.max_block_cycles());
        assert!(g.cycles >= 500);
    }

    #[test]
    fn occupancy_widens_waves_for_light_kernels() {
        let mut spec = DeviceSpec::test_unit(); // 1 SM, max 4 blocks/SM
        spec.n_sms = 1;
        // 8 light blocks of 2 threads: occupancy allows 4 resident -> 2 waves.
        let req = BlockRequirements { threads: 2, shared_bytes: 0, regs_per_thread: 8 };
        let mut blocks: Vec<(usize, Work)> = (0..8).map(|_| (2usize, Work(9))).collect();
        let g = launch_grid_occupancy(&spec, &mut blocks, &req);
        assert_eq!(g.waves, 2);
        // The naive one-block-per-SM scheduler needs 8 waves.
        let mut blocks: Vec<(usize, Work)> = (0..8).map(|_| (2usize, Work(9))).collect();
        let naive = launch_grid(&spec, &mut blocks);
        assert_eq!(naive.waves, 8);
        assert!(g.cycles < naive.cycles);
    }

    #[test]
    #[should_panic(expected = "exceeds the SM's resources")]
    fn occupancy_rejects_oversized_blocks() {
        let spec = DeviceSpec::test_unit();
        let req = BlockRequirements {
            threads: 2,
            shared_bytes: usize::MAX / 2,
            regs_per_thread: 8,
        };
        let mut blocks = vec![(2usize, Work(1))];
        let _ = launch_grid_occupancy(&spec, &mut blocks, &req);
    }

    #[test]
    fn aggregate_counters_sum_blocks() {
        struct Loader;
        impl RoundKernel for Loader {
            fn round(&mut self, tid: usize, ctx: &mut ThreadCtx<'_>) -> RoundOutcome {
                ctx.global(0, tid as u64 * 64, 1);
                RoundOutcome::ACTIVE
            }
            fn after_sync(&mut self, _round: u64) -> bool {
                false
            }
        }
        let spec = DeviceSpec::test_unit();
        let mut blocks = vec![(3usize, Loader), (3usize, Loader)];
        let g = launch_grid(&spec, &mut blocks);
        assert_eq!(g.total_global_transactions(), 6);
    }
}
