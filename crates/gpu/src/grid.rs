//! Grid launches: multiple independent thread blocks.
//!
//! A single cooperative block (shared memory and `__syncthreads()` are
//! block-scoped) caps a kernel at `max_threads_per_block` threads — and one
//! block is not a GPU: the RTX 3090 has 82 SMs. [`launch_grid`] scales a
//! round-based kernel past that limit by partitioning its threads into
//! blocks, simulating the blocks **concurrently on host worker threads**
//! (a rayon pool — blocks never communicate, so they are embarrassingly
//! parallel), and merging the per-block [`KernelStats`] deterministically:
//!
//! * counters (ALU, memory, atomics, recovery) are summed;
//! * per-round event streams are concatenated in block order;
//! * `cycles` follows the SM-occupancy wave model (see [`mod@crate::occupancy`]):
//!   blocks are scheduled `resident × n_sms` at a time, each wave lasts as
//!   long as its slowest block, and waves serialize.
//!
//! The merge depends only on block boundaries and kernel behaviour — never
//! on host scheduling — so the result is bit-identical for every rayon
//! worker count, including 1 (the sequential reference).
//!
//! [`launch_blocks`] is the lower-level API for heterogeneous grids: the
//! caller brings one pre-built kernel per block (used by throughput-mode
//! batch scans, where blocks differ in shape).

use rayon::prelude::*;

use crate::error::LaunchError;
use crate::kernel::{launch, run_block, RoundKernel};
use crate::occupancy::{fit_block_width, max_resident_blocks, BlockRequirements};
use crate::spec::DeviceSpec;
use crate::stats::{KernelStats, LaunchShape};

/// The shape of one block within a grid launch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockDim {
    /// Position of this block in the grid (submission order).
    pub index: usize,
    /// The *global* thread ids this block hosts.
    pub tids: std::ops::Range<usize>,
}

impl BlockDim {
    /// Number of threads in this block.
    pub fn len(&self) -> usize {
        self.tids.len()
    }

    /// Whether the block is empty (never true for dims built by
    /// [`block_dims`]).
    pub fn is_empty(&self) -> bool {
        self.tids.is_empty()
    }
}

/// Partitions `n_threads` global threads into blocks of at most
/// `max_threads_per_block`: every block full except possibly the last.
pub fn block_dims(spec: &DeviceSpec, n_threads: usize) -> Vec<BlockDim> {
    block_dims_width(spec.max_threads_per_block.max(1) as usize, n_threads)
}

/// Partitions `n_threads` global threads into blocks of at most `width`
/// threads (an occupancy-fitted width — see
/// [`crate::occupancy::fit_block_width`]): every block full except possibly
/// the last.
pub fn block_dims_width(width: usize, n_threads: usize) -> Vec<BlockDim> {
    assert!(n_threads > 0, "kernel needs at least one thread");
    assert!(width > 0, "blocks need at least one thread");
    (0..n_threads.div_ceil(width))
        .map(|index| {
            let lo = index * width;
            BlockDim { index, tids: lo..((lo + width).min(n_threads)) }
        })
        .collect()
}

/// A kernel that can hand out its state as per-block [`RoundKernel`]s.
///
/// `split` receives the grid's block dims and must return one block kernel
/// per dim. Each block kernel sees the *global* thread ids of its dim in
/// `round`, and borrows a disjoint slice of the parent's state — mirroring
/// how a CUDA grid partitions its working set, and exactly what lets the
/// simulator run blocks on concurrent host threads. Results written through
/// those borrows land in the parent when the blocks drop.
pub trait GridKernel {
    /// The per-block kernel, borrowing from `self` for `'s`.
    type Block<'s>: RoundKernel + Send
    where
        Self: 's;

    /// Splits `self` into one block kernel per entry of `dims`.
    fn split<'s>(&'s mut self, dims: &[BlockDim]) -> Vec<Self::Block<'s>>;

    /// Per-block resource requirements at block width `width`. Defaults to
    /// the light shape; implementors report their true shared-memory and
    /// register footprint so [`launch_grid`] can pick the block width and
    /// wave size from the occupancy calculator instead of assuming a light
    /// kernel (see [`RoundKernel::requirements`]).
    fn requirements(&self, width: u32) -> BlockRequirements {
        BlockRequirements::light(width)
    }
}

/// Launches `kernel` with `n_threads` threads as a grid of blocks of
/// `max_threads_per_block`, simulating blocks concurrently and merging
/// their statistics deterministically (see the module docs).
///
/// The single-block case reduces exactly to [`launch`]: same stats, same
/// cycles. The block simulations run on the ambient rayon pool; the merged
/// result is bit-identical for every pool size.
///
/// ```
/// use gspecpal_gpu::{
///     launch_grid, BlockDim, DeviceSpec, GridKernel, RoundKernel, RoundOutcome, ThreadCtx,
/// };
///
/// /// Every thread does ten ALU ops in a single round.
/// struct Burn;
/// impl RoundKernel for Burn {
///     fn round(&mut self, _tid: usize, ctx: &mut ThreadCtx<'_>) -> RoundOutcome {
///         ctx.alu(10);
///         RoundOutcome::ACTIVE
///     }
///     fn after_sync(&mut self, _round: u64) -> bool { false }
/// }
///
/// /// Stateless kernel: every block is another `Burn`.
/// struct BurnGrid;
/// impl GridKernel for BurnGrid {
///     type Block<'s> = Burn;
///     fn split<'s>(&'s mut self, dims: &[BlockDim]) -> Vec<Burn> {
///         dims.iter().map(|_| Burn).collect()
///     }
/// }
///
/// // 8192 threads on a 64-thread-block device: a 128-block grid.
/// let spec = DeviceSpec::test_unit();
/// let stats = launch_grid(&spec, 8192, &mut BurnGrid);
/// assert_eq!(stats.alu_ops, 81_920);
/// ```
pub fn launch_grid<G: GridKernel>(
    spec: &DeviceSpec,
    n_threads: usize,
    kernel: &mut G,
) -> KernelStats {
    try_launch_grid(spec, n_threads, kernel).unwrap_or_else(|e| panic!("launch_grid: {e}"))
}

/// Fallible [`launch_grid`]: returns a structured [`LaunchError`] instead of
/// panicking when no block shape of the kernel fits on an SM. The block
/// width comes from [`fit_block_width`] over the kernel's reported
/// [`GridKernel::requirements`], and waves are sized from the resulting
/// occupancy — a kernel hogging shared memory or registers gets narrower
/// blocks and fewer resident blocks per SM, exactly as on real hardware.
pub fn try_launch_grid<G: GridKernel>(
    spec: &DeviceSpec,
    n_threads: usize,
    kernel: &mut G,
) -> Result<KernelStats, LaunchError> {
    Ok(try_launch_grid_detailed(spec, n_threads, kernel)?.stats)
}

/// A grid launch with its per-block timing preserved.
///
/// [`try_launch_grid`] merges everything into one [`KernelStats`]; callers
/// that need to place *individual blocks* on the launch timeline (e.g. a
/// serving pipeline reporting per-stream completion, where each stream is
/// one block) also need the per-block cycles and the wave geometry. Block
/// `i` runs in wave `i / shape.blocks_per_wave`; a wave starts when the
/// previous one ends and lasts as long as its slowest block — which is what
/// [`GridLaunch::wave_starts`] computes.
#[derive(Clone, Debug)]
pub struct GridLaunch {
    /// The merged statistics — identical to what [`try_launch_grid`]
    /// returns.
    pub stats: KernelStats,
    /// Each block's own completion cycles, in block (= submission) order.
    pub block_cycles: Vec<u64>,
    /// The occupancy-fitted block width threads were partitioned by.
    pub width: u32,
}

impl GridLaunch {
    /// Start cycle of each scheduling wave, relative to kernel launch:
    /// `wave_starts[w]` = sum of the gate (max) cycles of waves `0..w`.
    /// Block `i` therefore finishes at
    /// `wave_starts[i / blocks_per_wave] + block_cycles[i]`.
    pub fn wave_starts(&self) -> Vec<u64> {
        let per_wave = self
            .stats
            .shape
            .as_ref()
            .map(|s| s.blocks_per_wave.max(1) as usize)
            .unwrap_or(usize::MAX);
        let mut starts = Vec::with_capacity(self.block_cycles.len().div_ceil(per_wave));
        let mut t = 0u64;
        for wave in self.block_cycles.chunks(per_wave) {
            starts.push(t);
            t += wave.iter().copied().max().unwrap_or(0);
        }
        starts
    }

    /// Absolute completion cycle of block `i` on the launch timeline.
    pub fn block_completion(&self, i: usize) -> u64 {
        let per_wave = self
            .stats
            .shape
            .as_ref()
            .map(|s| s.blocks_per_wave.max(1) as usize)
            .unwrap_or(usize::MAX);
        self.wave_starts()[i / per_wave] + self.block_cycles[i]
    }
}

/// [`try_launch_grid`] variant that additionally reports per-block cycles
/// and the fitted block width (see [`GridLaunch`]). The merged `stats` are
/// bit-identical to [`try_launch_grid`]'s.
pub fn try_launch_grid_detailed<G: GridKernel>(
    spec: &DeviceSpec,
    n_threads: usize,
    kernel: &mut G,
) -> Result<GridLaunch, LaunchError> {
    let (grid, width) = try_launch_grid_unfolded(spec, n_threads, kernel)?;
    let block_cycles = grid.blocks.iter().map(|b| b.cycles).collect();
    Ok(GridLaunch { stats: grid.fold(), block_cycles, width })
}

/// The deepest grid-launch entry point: runs the blocks and returns the
/// *unfolded* per-block [`GridStats`] plus the fitted block width, without
/// merging. [`try_launch_grid`] is `unfolded → fold()`. Callers that need to
/// overlay per-block costs before the merge — the fault-recovery layer
/// charges retries, backoff, and degraded re-execution onto individual
/// blocks, then calls [`GridStats::reschedule`] and [`GridStats::fold`] —
/// use this directly.
pub fn try_launch_grid_unfolded<G: GridKernel>(
    spec: &DeviceSpec,
    n_threads: usize,
    kernel: &mut G,
) -> Result<(GridStats, u32), LaunchError> {
    if n_threads == 0 {
        return Err(LaunchError::EmptyGrid);
    }
    let width = fit_block_width(spec, |w| kernel.requirements(w))?;
    let dims = block_dims_width(width as usize, n_threads);
    // The tail (or sole) block may be narrower than the fitted width; the
    // wave model schedules by the widest block's footprint.
    let req = kernel.requirements(dims[0].len() as u32);
    let resident = max_resident_blocks(spec, &req);
    if resident == 0 {
        return Err(LaunchError::UnlaunchableShape { req });
    }
    let blocks = kernel.split(&dims);
    assert_eq!(blocks.len(), dims.len(), "GridKernel::split must return one block kernel per dim");
    let work: Vec<(BlockDim, G::Block<'_>)> = dims.into_iter().zip(blocks).collect();
    let per_block: Vec<KernelStats> = work
        .into_par_iter()
        .map(|(dim, mut block)| run_block(spec, dim.tids.start, dim.len(), &mut block))
        .collect();
    let per_wave = (resident * spec.n_sms.max(1)) as usize;
    let mut grid = GridStats {
        blocks: per_block,
        waves: 0,
        cycles: 0,
        resident_per_sm: resident,
        blocks_per_wave: per_wave as u32,
    };
    grid.reschedule();
    Ok((grid, width))
}

/// The block that gates (determines the duration of) a scheduling wave: the
/// slowest block, first one on a tie so the choice is deterministic and —
/// for a single-block wave — trivially the block itself.
fn gating_block(wave: &[KernelStats]) -> Option<&KernelStats> {
    let mut gate: Option<&KernelStats> = None;
    for b in wave {
        match gate {
            Some(g) if g.cycles >= b.cycles => {}
            _ => gate = Some(b),
        }
    }
    gate
}

/// Statistics of a whole heterogeneous grid launch ([`launch_blocks`]).
#[derive(Clone, Debug)]
pub struct GridStats {
    /// Per-block kernel statistics, in submission order.
    pub blocks: Vec<KernelStats>,
    /// Number of scheduling waves the grid needed.
    pub waves: u32,
    /// Grid completion time in cycles (sum of wave maxima).
    pub cycles: u64,
    /// Resident blocks per SM the scheduler assumed when forming waves.
    pub resident_per_sm: u32,
    /// Blocks scheduled per wave (`resident_per_sm × n_sms`).
    pub blocks_per_wave: u32,
}

impl GridStats {
    /// Aggregate global transactions across all blocks.
    pub fn total_global_transactions(&self) -> u64 {
        self.blocks.iter().map(|b| b.global_transactions).sum()
    }

    /// The slowest single block.
    pub fn max_block_cycles(&self) -> u64 {
        self.blocks.iter().map(|b| b.cycles).max().unwrap_or(0)
    }

    /// The occupancy shape of this launch, for embedding into merged
    /// [`KernelStats`].
    pub fn shape(&self) -> LaunchShape {
        LaunchShape {
            resident_per_sm: self.resident_per_sm,
            blocks_per_wave: self.blocks_per_wave,
            waves: self.waves,
        }
    }

    /// Recomputes `waves` and `cycles` from the current per-block stats and
    /// `blocks_per_wave` — the wave model re-applied after block mutation.
    /// The fault-recovery layer charges retry, backoff, and degradation
    /// cycles onto individual blocks and then calls this so the grid's
    /// completion time (and [`GridStats::fold`]'s internal consistency
    /// check) reflect the mutated blocks.
    pub fn reschedule(&mut self) {
        let per_wave = self.blocks_per_wave.max(1) as usize;
        let mut waves = 0u32;
        let mut cycles = 0u64;
        for wave in self.blocks.chunks(per_wave) {
            waves += 1;
            cycles += wave.iter().map(|b| b.cycles).max().unwrap_or(0);
        }
        self.waves = waves;
        self.cycles = cycles;
    }

    /// Folds the per-block stats into one merged [`KernelStats`] with the
    /// grid's wave-model `cycles`, this launch's [`LaunchShape`], and
    /// per-phase cycles attributed from each wave's gating (slowest, first
    /// on ties) block — the same merge [`launch_grid`] performs internally,
    /// exposed for callers of the heterogeneous-block launchers.
    pub fn fold(&self) -> KernelStats {
        let mut merged = KernelStats::default();
        for block in &self.blocks {
            merged.absorb_block(block);
        }
        merged.shape = Some(self.shape());
        let per_wave = self.blocks_per_wave.max(1) as usize;
        let mut cycles = 0u64;
        for wave in self.blocks.chunks(per_wave) {
            if let Some(gate) = gating_block(wave) {
                cycles += gate.cycles;
                merged.profile.absorb_cycles(&gate.profile);
            }
        }
        debug_assert_eq!(cycles, self.cycles, "fold must reproduce the wave-model cycles");
        merged.cycles = self.cycles;
        merged
    }
}

/// Launches one block per kernel in `blocks` (each with its thread count)
/// and schedules them onto the device's SMs in waves, one resident block
/// per SM. Blocks simulate concurrently on the rayon pool; per-block stats
/// and wave accounting are deterministic regardless of pool size.
pub fn launch_blocks<K: RoundKernel + Send>(
    spec: &DeviceSpec,
    blocks: &mut [(usize, K)],
) -> GridStats {
    launch_block_waves(spec, blocks, 1)
}

/// Like [`launch_blocks`], with the wave width derived from the kernel's
/// resource requirements via the occupancy calculator: blocks per wave =
/// `max_resident_blocks(spec, req) × n_sms`. Panics on an unlaunchable
/// shape; use [`try_launch_blocks_occupancy`] to handle it structurally.
pub fn launch_blocks_occupancy<K: RoundKernel + Send>(
    spec: &DeviceSpec,
    blocks: &mut [(usize, K)],
    req: &BlockRequirements,
) -> GridStats {
    try_launch_blocks_occupancy(spec, blocks, req)
        .unwrap_or_else(|e| panic!("launch_blocks_occupancy: {e}"))
}

/// Fallible [`launch_blocks_occupancy`]: a shape with zero resident blocks
/// (or an empty grid) becomes a [`LaunchError`] instead of a panic.
pub fn try_launch_blocks_occupancy<K: RoundKernel + Send>(
    spec: &DeviceSpec,
    blocks: &mut [(usize, K)],
    req: &BlockRequirements,
) -> Result<GridStats, LaunchError> {
    if blocks.is_empty() {
        return Err(LaunchError::EmptyGrid);
    }
    let resident = max_resident_blocks(spec, req);
    if resident == 0 {
        return Err(LaunchError::UnlaunchableShape { req: *req });
    }
    Ok(launch_block_waves(spec, blocks, resident))
}

/// Like [`launch_blocks`], but each kernel reports its own
/// [`RoundKernel::requirements`] and the wave width follows the occupancy of
/// the hungriest block (`min` over blocks of `max_resident_blocks`) — the
/// conservative choice a driver makes for a heterogeneous grid. Panics on an
/// unlaunchable shape; use [`try_launch_blocks_auto`] to handle it.
pub fn launch_blocks_auto<K: RoundKernel + Send>(
    spec: &DeviceSpec,
    blocks: &mut [(usize, K)],
) -> GridStats {
    try_launch_blocks_auto(spec, blocks).unwrap_or_else(|e| panic!("launch_blocks_auto: {e}"))
}

/// Fallible [`launch_blocks_auto`]: an empty grid or an unlaunchable block
/// shape becomes a [`LaunchError`] instead of a panic.
pub fn try_launch_blocks_auto<K: RoundKernel + Send>(
    spec: &DeviceSpec,
    blocks: &mut [(usize, K)],
) -> Result<GridStats, LaunchError> {
    if blocks.is_empty() {
        return Err(LaunchError::EmptyGrid);
    }
    let mut resident = u32::MAX;
    for (n_threads, kernel) in blocks.iter() {
        let req = kernel.requirements(*n_threads as u32);
        let r = max_resident_blocks(spec, &req);
        if r == 0 {
            return Err(LaunchError::UnlaunchableShape { req });
        }
        resident = resident.min(r);
    }
    Ok(launch_block_waves(spec, blocks, resident))
}

fn launch_block_waves<K: RoundKernel + Send>(
    spec: &DeviceSpec,
    blocks: &mut [(usize, K)],
    resident: u32,
) -> GridStats {
    assert!(!blocks.is_empty(), "a grid needs at least one block");
    let resident = resident.max(1);
    let per_wave = (resident * spec.n_sms.max(1)) as usize;
    let work: Vec<&mut (usize, K)> = blocks.iter_mut().collect();
    let stats: Vec<KernelStats> =
        work.into_par_iter().map(|(n_threads, kernel)| launch(spec, *n_threads, kernel)).collect();
    let mut cycles = 0u64;
    let mut waves = 0u32;
    for wave in stats.chunks(per_wave) {
        cycles += wave.iter().map(|s| s.cycles).max().unwrap_or(0);
        waves += 1;
    }
    GridStats {
        blocks: stats,
        waves,
        cycles,
        resident_per_sm: resident,
        blocks_per_wave: per_wave as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{RoundOutcome, ThreadCtx};

    struct Work(u64);

    impl RoundKernel for Work {
        fn round(&mut self, _tid: usize, ctx: &mut ThreadCtx<'_>) -> RoundOutcome {
            ctx.alu(self.0);
            RoundOutcome::ACTIVE
        }
        fn after_sync(&mut self, _round: u64) -> bool {
            false
        }
    }

    #[test]
    fn one_wave_runs_blocks_concurrently() {
        let spec = DeviceSpec::test_unit(); // 1 SM
        let mut blocks = vec![(4usize, Work(10))];
        let g = launch_blocks(&spec, &mut blocks);
        assert_eq!(g.waves, 1);
        assert_eq!(g.cycles, g.blocks[0].cycles);
    }

    #[test]
    fn waves_serialize_beyond_sm_count() {
        let mut spec = DeviceSpec::test_unit();
        spec.n_sms = 2;
        // 5 equal blocks on 2 SMs: 3 waves, each gated by one block.
        let mut blocks: Vec<(usize, Work)> = (0..5).map(|_| (2usize, Work(7))).collect();
        let g = launch_blocks(&spec, &mut blocks);
        assert_eq!(g.waves, 3);
        let per_block = g.blocks[0].cycles;
        assert_eq!(g.cycles, 3 * per_block);
        assert_eq!(g.blocks.len(), 5);
    }

    #[test]
    fn wave_duration_is_gated_by_the_slowest_block() {
        let mut spec = DeviceSpec::test_unit();
        spec.n_sms = 2;
        let mut blocks = vec![(1usize, Work(5)), (1usize, Work(500))];
        let g = launch_blocks(&spec, &mut blocks);
        assert_eq!(g.waves, 1);
        assert_eq!(g.cycles, g.max_block_cycles());
        assert!(g.cycles >= 500);
    }

    #[test]
    fn occupancy_widens_waves_for_light_kernels() {
        let mut spec = DeviceSpec::test_unit(); // 1 SM, max 4 blocks/SM
        spec.n_sms = 1;
        // 8 light blocks of 2 threads: occupancy allows 4 resident -> 2 waves.
        let req = BlockRequirements { threads: 2, shared_bytes: 0, regs_per_thread: 8 };
        let mut blocks: Vec<(usize, Work)> = (0..8).map(|_| (2usize, Work(9))).collect();
        let g = launch_blocks_occupancy(&spec, &mut blocks, &req);
        assert_eq!(g.waves, 2);
        // The naive one-block-per-SM scheduler needs 8 waves.
        let mut blocks: Vec<(usize, Work)> = (0..8).map(|_| (2usize, Work(9))).collect();
        let naive = launch_blocks(&spec, &mut blocks);
        assert_eq!(naive.waves, 8);
        assert!(g.cycles < naive.cycles);
    }

    #[test]
    #[should_panic(expected = "exceeds the SM's resources")]
    fn occupancy_rejects_oversized_blocks() {
        let spec = DeviceSpec::test_unit();
        let req =
            BlockRequirements { threads: 2, shared_bytes: usize::MAX / 2, regs_per_thread: 8 };
        let mut blocks = vec![(2usize, Work(1))];
        let _ = launch_blocks_occupancy(&spec, &mut blocks, &req);
    }

    #[test]
    fn aggregate_counters_sum_blocks() {
        struct Loader;
        impl RoundKernel for Loader {
            fn round(&mut self, tid: usize, ctx: &mut ThreadCtx<'_>) -> RoundOutcome {
                ctx.global(0, tid as u64 * 64, 1);
                RoundOutcome::ACTIVE
            }
            fn after_sync(&mut self, _round: u64) -> bool {
                false
            }
        }
        let spec = DeviceSpec::test_unit();
        let mut blocks = vec![(3usize, Loader), (3usize, Loader)];
        let g = launch_blocks(&spec, &mut blocks);
        assert_eq!(g.total_global_transactions(), 6);
    }

    /// Grid kernel: thread `tid` writes `tid` into its slot and charges
    /// `tid % 7` ALU ops — verifies global tids, disjoint splitting, and
    /// result write-back through the block borrows.
    struct SlotGrid {
        slots: Vec<usize>,
    }

    struct SlotBlock<'s> {
        base: usize,
        slots: &'s mut [usize],
    }

    impl RoundKernel for SlotBlock<'_> {
        fn round(&mut self, tid: usize, ctx: &mut ThreadCtx<'_>) -> RoundOutcome {
            ctx.alu((tid % 7) as u64);
            self.slots[tid - self.base] = tid;
            RoundOutcome::ACTIVE
        }
        fn after_sync(&mut self, _round: u64) -> bool {
            false
        }
    }

    impl GridKernel for SlotGrid {
        type Block<'s> = SlotBlock<'s>;
        fn split<'s>(&'s mut self, dims: &[BlockDim]) -> Vec<SlotBlock<'s>> {
            let mut rest: &mut [usize] = &mut self.slots;
            let mut out = Vec::with_capacity(dims.len());
            for dim in dims {
                let (mine, tail) = rest.split_at_mut(dim.len());
                out.push(SlotBlock { base: dim.tids.start, slots: mine });
                rest = tail;
            }
            out
        }
    }

    #[test]
    fn grid_passes_global_tids_and_writes_back() {
        let spec = DeviceSpec::test_unit(); // 64-thread blocks
        let n = 1000;
        let mut kernel = SlotGrid { slots: vec![usize::MAX; n] };
        let stats = launch_grid(&spec, n, &mut kernel);
        assert_eq!(kernel.slots, (0..n).collect::<Vec<_>>());
        assert_eq!(stats.alu_ops, (0..n as u64).map(|t| t % 7).sum::<u64>());
        // 1000 threads over 64-thread blocks: 16 blocks.
        assert_eq!(stats.active_per_round.len(), 16);
        assert_eq!(stats.active_per_round.iter().sum::<u32>(), 1000);
    }

    #[test]
    fn single_block_grid_equals_launch() {
        let spec = DeviceSpec::test_unit();
        let direct = launch(&spec, 48, &mut Work(13));
        let mut via_grid = launch_grid(&spec, 48, &mut WorkGrid(13));
        // The grid launch also reports its occupancy shape; everything else
        // (cycles included) must match the single-block launch bit-for-bit.
        let shape = via_grid.shape.take().expect("grid launches report a shape");
        assert_eq!(shape.waves, 1);
        assert_eq!(via_grid, direct);
    }

    struct WorkGrid(u64);
    impl GridKernel for WorkGrid {
        type Block<'s> = Work;
        fn split(&mut self, dims: &[BlockDim]) -> Vec<Work> {
            dims.iter().map(|_| Work(self.0)).collect()
        }
    }

    #[test]
    fn grid_cycles_follow_the_wave_model() {
        let mut spec = DeviceSpec::test_unit();
        spec.n_sms = 2;
        spec.max_blocks_per_sm = 1;
        spec.max_threads_per_sm = spec.max_threads_per_block;
        // 5 full blocks on 2 SMs, one resident each: 3 waves.
        let n = 5 * spec.max_threads_per_block as usize;
        let stats = launch_grid(&spec, n, &mut WorkGrid(7));
        let one_block = launch(&spec, spec.max_threads_per_block as usize, &mut Work(7));
        assert_eq!(stats.cycles, 3 * one_block.cycles);
    }

    /// A grid kernel that declares a huge shared-memory footprint at every
    /// width: unlaunchable on any device.
    struct HogGrid;
    impl GridKernel for HogGrid {
        type Block<'s> = Work;
        fn split(&mut self, dims: &[BlockDim]) -> Vec<Work> {
            dims.iter().map(|_| Work(1)).collect()
        }
        fn requirements(&self, width: u32) -> BlockRequirements {
            BlockRequirements { threads: width, shared_bytes: usize::MAX / 2, regs_per_thread: 32 }
        }
    }

    /// Regression: a zero-resident shape used to be silently clamped to one
    /// resident block (`.max(1)`), mis-costing the grid; it must now surface
    /// as a structured launch error.
    #[test]
    fn impossible_shapes_error_instead_of_one_block_fallback() {
        let spec = DeviceSpec::test_unit();
        let err = try_launch_grid(&spec, 128, &mut HogGrid).unwrap_err();
        let LaunchError::UnlaunchableShape { req } = err else {
            panic!("expected UnlaunchableShape, got {err:?}");
        };
        assert_eq!(req.shared_bytes, usize::MAX / 2);
        // Auto block launches reject the same shape the same way.
        struct HogBlock;
        impl RoundKernel for HogBlock {
            fn round(&mut self, _tid: usize, _ctx: &mut ThreadCtx<'_>) -> RoundOutcome {
                RoundOutcome::ACTIVE
            }
            fn after_sync(&mut self, _round: u64) -> bool {
                false
            }
            fn requirements(&self, threads: u32) -> BlockRequirements {
                BlockRequirements { threads, shared_bytes: usize::MAX / 2, regs_per_thread: 32 }
            }
        }
        let mut blocks = vec![(2usize, HogBlock)];
        assert!(try_launch_blocks_auto(&spec, &mut blocks).is_err());
    }

    #[test]
    #[should_panic(expected = "exceeds the SM's resources")]
    fn launch_grid_panics_on_impossible_shapes() {
        let spec = DeviceSpec::test_unit();
        let _ = launch_grid(&spec, 128, &mut HogGrid);
    }

    /// A register-hungry grid kernel gets a narrower fitted block width, so
    /// the same thread count spreads across more blocks.
    struct HeavyGrid;
    impl GridKernel for HeavyGrid {
        type Block<'s> = Work;
        fn split(&mut self, dims: &[BlockDim]) -> Vec<Work> {
            dims.iter().map(|_| Work(1)).collect()
        }
        fn requirements(&self, width: u32) -> BlockRequirements {
            // test_unit has 4096 registers per SM: 128 regs/thread caps a
            // block at 32 threads (width fits to 32 on the 4-wide warp).
            BlockRequirements { threads: width, shared_bytes: 0, regs_per_thread: 128 }
        }
    }

    #[test]
    fn requirements_narrow_the_fitted_block_width() {
        let spec = DeviceSpec::test_unit(); // 64-thread blocks, 4096 regs/SM
        let light = launch_grid(&spec, 128, &mut WorkGrid(1));
        let heavy = launch_grid(&spec, 128, &mut HeavyGrid);
        // Light: 2 blocks of 64. Heavy: 4 blocks of 32 (4096/128 = 32).
        assert_eq!(light.active_per_round.len(), 2);
        assert_eq!(heavy.active_per_round.len(), 4);
        assert_eq!(heavy.shape.unwrap().resident_per_sm, 1);
    }

    #[test]
    fn grid_profile_cycles_sum_to_the_wave_model() {
        let mut spec = DeviceSpec::test_unit();
        spec.n_sms = 2;
        spec.max_blocks_per_sm = 1;
        spec.max_threads_per_sm = spec.max_threads_per_block;
        // 5 full blocks on 2 SMs: 3 waves, all work in SpecExec.
        let n = 5 * spec.max_threads_per_block as usize;
        let stats = launch_grid(&spec, n, &mut WorkGrid(7));
        assert_eq!(stats.profile.total_cycles(), stats.cycles);
        use crate::stats::Phase;
        assert_eq!(stats.profile.get(Phase::SpecExec).cycles, stats.cycles);
        // Event counters still sum over every block, not just the gates.
        assert_eq!(stats.profile.get(Phase::SpecExec).alu_ops, stats.alu_ops);
        assert_eq!(stats.profile.get(Phase::SpecExec).thread_rounds, n as u64);
    }

    #[test]
    fn fold_matches_the_grid_merge() {
        let mut spec = DeviceSpec::test_unit();
        spec.n_sms = 2;
        let mut blocks: Vec<(usize, Work)> = (1..=5).map(|i| (2usize, Work(i * 3))).collect();
        let g = launch_blocks(&spec, &mut blocks);
        let folded = g.fold();
        assert_eq!(folded.cycles, g.cycles);
        assert_eq!(folded.shape, Some(g.shape()));
        assert_eq!(folded.profile.total_cycles(), folded.cycles);
        assert_eq!(folded.global_transactions, g.total_global_transactions());
        assert_eq!(
            folded.alu_ops,
            g.blocks.iter().map(|b| b.alu_ops).sum::<u64>(),
            "fold sums every block's events"
        );
    }

    #[test]
    fn detailed_launch_matches_the_plain_one_and_places_blocks() {
        let mut spec = DeviceSpec::test_unit();
        spec.n_sms = 2;
        spec.max_blocks_per_sm = 1;
        spec.max_threads_per_sm = spec.max_threads_per_block;
        // 5 full blocks on 2 SMs, one resident each: 3 waves of 2 blocks.
        let n = 5 * spec.max_threads_per_block as usize;
        let plain = try_launch_grid(&spec, n, &mut WorkGrid(7)).unwrap();
        let detail = try_launch_grid_detailed(&spec, n, &mut WorkGrid(7)).unwrap();
        assert_eq!(detail.stats, plain, "detailed merge is bit-identical");
        assert_eq!(detail.block_cycles.len(), 5);
        assert_eq!(detail.width, spec.max_threads_per_block);
        let per_block = detail.block_cycles[0];
        assert!(detail.block_cycles.iter().all(|&c| c == per_block), "equal blocks");
        assert_eq!(detail.wave_starts(), vec![0, per_block, 2 * per_block]);
        assert_eq!(detail.block_completion(0), per_block);
        assert_eq!(detail.block_completion(2), 2 * per_block, "wave 1 block");
        assert_eq!(detail.block_completion(4), plain.cycles, "last block ends the launch");
    }

    #[test]
    fn empty_grids_error_structurally() {
        let spec = DeviceSpec::test_unit();
        let mut blocks: Vec<(usize, Work)> = vec![];
        assert_eq!(try_launch_blocks_auto(&spec, &mut blocks).unwrap_err(), LaunchError::EmptyGrid);
        let req = BlockRequirements::light(2);
        assert_eq!(
            try_launch_blocks_occupancy(&spec, &mut blocks, &req).unwrap_err(),
            LaunchError::EmptyGrid
        );
        assert_eq!(
            try_launch_grid(&spec, 0, &mut WorkGrid(1)).unwrap_err(),
            LaunchError::EmptyGrid
        );
    }

    #[test]
    fn reschedule_recomputes_the_wave_model_after_mutation() {
        use crate::stats::Phase;
        let mut spec = DeviceSpec::test_unit();
        spec.n_sms = 2;
        // 4 equal blocks on 2 SMs: 2 waves.
        let mut blocks: Vec<(usize, Work)> = (0..4).map(|_| (2usize, Work(7))).collect();
        let mut g = launch_blocks(&spec, &mut blocks);
        let before = g.cycles;
        assert_eq!(g.waves, 2);
        // Charge recovery overhead onto the last block (keeping its own
        // cycles-partition invariant) and re-apply the wave model.
        g.blocks[3].cycles += 1000;
        g.blocks[3].profile.get_mut(Phase::Recovery).cycles += 1000;
        g.reschedule();
        assert_eq!(g.cycles, before + 1000, "wave 1's gate slowed by the overlay");
        let folded = g.fold();
        assert_eq!(folded.cycles, g.cycles);
        assert_eq!(folded.profile.total_cycles(), folded.cycles, "partition survives the fold");
        assert_eq!(folded.profile.get(Phase::Recovery).cycles, 1000);
    }

    #[test]
    fn unfolded_launch_folds_to_the_plain_stats() {
        let mut spec = DeviceSpec::test_unit();
        spec.n_sms = 2;
        let n = 5 * spec.max_threads_per_block as usize;
        let plain = try_launch_grid(&spec, n, &mut WorkGrid(7)).unwrap();
        let (grid, width) = try_launch_grid_unfolded(&spec, n, &mut WorkGrid(7)).unwrap();
        assert_eq!(grid.fold(), plain, "unfolded → fold reproduces the merged launch");
        assert_eq!(width, spec.max_threads_per_block);
        assert_eq!(grid.blocks.len(), 5);
    }

    #[test]
    fn grid_stats_identical_across_pool_sizes() {
        let spec = DeviceSpec::test_unit();
        let n = 777;
        let run = |workers: usize| {
            let pool = rayon::ThreadPoolBuilder::new().num_threads(workers).build().unwrap();
            pool.install(|| {
                let mut kernel = SlotGrid { slots: vec![0; n] };
                (launch_grid(&spec, n, &mut kernel), kernel.slots)
            })
        };
        let (seq_stats, seq_slots) = run(1);
        for workers in [2, 4, 8] {
            let (stats, slots) = run(workers);
            assert_eq!(stats, seq_stats, "{workers} workers");
            assert_eq!(slots, seq_slots, "{workers} workers");
        }
    }
}
