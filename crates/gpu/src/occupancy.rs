//! Occupancy: how many blocks fit on one SM at once.
//!
//! The classic CUDA occupancy calculation, reduced to the three resources
//! our model tracks: resident threads, shared memory, and the register
//! file. The grid scheduler uses this to size its waves — a kernel that
//! hogs shared memory (a big hot table) runs fewer blocks concurrently.

use crate::error::LaunchError;
use crate::spec::DeviceSpec;

/// Per-block resource requirements of a kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockRequirements {
    /// Threads per block.
    pub threads: u32,
    /// Shared memory per block, in bytes.
    pub shared_bytes: usize,
    /// Registers per thread.
    pub regs_per_thread: u32,
}

impl BlockRequirements {
    /// Requirements of a block that uses `threads` threads and nothing else
    /// remarkable (a light kernel: 32 registers, no shared memory).
    pub fn light(threads: u32) -> Self {
        BlockRequirements { threads, shared_bytes: 0, regs_per_thread: 32 }
    }
}

/// Maximum blocks of the given shape resident on one SM. Returns 0 when a
/// single block already exceeds some resource (the launch would fail on real
/// hardware).
pub fn max_resident_blocks(spec: &DeviceSpec, req: &BlockRequirements) -> u32 {
    if req.threads == 0 || req.threads > spec.max_threads_per_block {
        return 0;
    }
    let by_threads = spec.max_threads_per_sm / req.threads.max(1);
    let by_shared = if req.shared_bytes == 0 {
        u32::MAX
    } else if req.shared_bytes > spec.shared_mem_bytes {
        0
    } else {
        (spec.shared_mem_bytes / req.shared_bytes) as u32
    };
    let block_regs = req.regs_per_thread.saturating_mul(req.threads);
    let by_regs = if block_regs == 0 {
        u32::MAX
    } else if block_regs > spec.registers_per_sm {
        0
    } else {
        spec.registers_per_sm / block_regs
    };
    by_threads.min(by_shared).min(by_regs).min(spec.max_blocks_per_sm)
}

/// Occupancy as a fraction of the SM's thread capacity (the figure the CUDA
/// occupancy calculator reports).
pub fn occupancy(spec: &DeviceSpec, req: &BlockRequirements) -> f64 {
    let blocks = max_resident_blocks(spec, req);
    f64::from(blocks * req.threads) / f64::from(spec.max_threads_per_sm)
}

/// Picks the widest launchable block for a kernel whose requirements depend
/// on its width (shared memory and register use typically scale with the
/// thread count). Candidates are warp multiples from `max_threads_per_block`
/// downwards, then sub-warp widths; the first one with at least one resident
/// block wins. Light kernels get the full block width; shared-memory- or
/// register-heavy ones get narrower blocks, exactly like tuning a launch
/// with the CUDA occupancy calculator.
///
/// Returns [`LaunchError::UnlaunchableShape`] when even a one-thread block
/// exceeds some SM resource (e.g. a hot table bigger than shared memory).
pub fn fit_block_width(
    spec: &DeviceSpec,
    req: impl Fn(u32) -> BlockRequirements,
) -> Result<u32, LaunchError> {
    let warp = spec.warp_size.max(1);
    let max = spec.max_threads_per_block.max(1);
    let warp_multiples = (1..=max / warp).rev().map(|m| m * warp);
    let sub_warp = (1..warp.min(max + 1)).rev();
    for width in warp_multiples.chain(sub_warp) {
        if max_resident_blocks(spec, &req(width)) > 0 {
            return Ok(width);
        }
    }
    Err(LaunchError::UnlaunchableShape { req: req(1) })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rtx() -> DeviceSpec {
        DeviceSpec::rtx3090()
    }

    #[test]
    fn light_blocks_hit_the_thread_cap() {
        // 256-thread light blocks: 1536/256 = 6 blocks, full occupancy.
        let r = BlockRequirements::light(256);
        assert_eq!(max_resident_blocks(&rtx(), &r), 6);
        assert!((occupancy(&rtx(), &r) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shared_memory_limits_residency() {
        // A block using 60 KB of the 100 KB shared memory: only one fits.
        let r = BlockRequirements { threads: 256, shared_bytes: 60 * 1024, regs_per_thread: 32 };
        assert_eq!(max_resident_blocks(&rtx(), &r), 1);
        assert!(occupancy(&rtx(), &r) < 0.2);
    }

    #[test]
    fn registers_limit_residency() {
        // 128 regs/thread × 512 threads = 64k regs: one block per SM.
        let r = BlockRequirements { threads: 512, shared_bytes: 0, regs_per_thread: 128 };
        assert_eq!(max_resident_blocks(&rtx(), &r), 1);
    }

    #[test]
    fn oversized_blocks_cannot_launch() {
        let r = BlockRequirements { threads: 4096, shared_bytes: 0, regs_per_thread: 32 };
        assert_eq!(max_resident_blocks(&rtx(), &r), 0);
        let r = BlockRequirements { threads: 64, shared_bytes: 101 * 1024, regs_per_thread: 32 };
        assert_eq!(max_resident_blocks(&rtx(), &r), 0);
        let r = BlockRequirements { threads: 1024, shared_bytes: 0, regs_per_thread: 65 };
        assert_eq!(max_resident_blocks(&rtx(), &r), 0, "66560 regs exceed the file");
    }

    #[test]
    fn t4_runs_fewer_light_blocks_than_ampere() {
        // 256-thread light blocks: the T4's 1024 resident threads fit 4
        // blocks where the RTX 3090's 1536 fit 6 — full occupancy on both,
        // but a third less parallelism per SM (and half the SMs).
        let t4 = DeviceSpec::t4();
        let r = BlockRequirements::light(256);
        assert_eq!(max_resident_blocks(&t4, &r), 4);
        assert!((occupancy(&t4, &r) - 1.0).abs() < 1e-12);
        assert!(max_resident_blocks(&t4, &r) < max_resident_blocks(&rtx(), &r));
    }

    #[test]
    fn t4_shared_memory_limits_residency_sooner() {
        // A 40 KB hot table: one resident block on the T4 (64 KB shared),
        // two on the RTX 3090 (100 KB), four on the A100 (164 KB) — the
        // heterogeneity the fleet router must price in.
        let r = BlockRequirements { threads: 256, shared_bytes: 40 * 1024, regs_per_thread: 32 };
        assert_eq!(max_resident_blocks(&DeviceSpec::t4(), &r), 1);
        assert_eq!(max_resident_blocks(&rtx(), &r), 2);
        assert_eq!(max_resident_blocks(&DeviceSpec::a100(), &r), 4);
    }

    #[test]
    fn t4_block_over_shared_budget_cannot_launch() {
        let t4 = DeviceSpec::t4();
        let r = BlockRequirements { threads: 256, shared_bytes: 65 * 1024, regs_per_thread: 32 };
        assert_eq!(max_resident_blocks(&t4, &r), 0, "65 KB exceeds the T4's 64 KB");
    }

    #[test]
    fn hardware_block_cap_applies() {
        // Tiny blocks would fit 1536/32 = 48 times by threads alone, but the
        // hardware caps resident blocks at 16.
        let r = BlockRequirements::light(32);
        assert_eq!(max_resident_blocks(&rtx(), &r), 16);
    }

    #[test]
    fn exactly_at_the_shared_memory_limit_still_launches() {
        // A block using the RTX 3090's entire shared memory is the boundary
        // case: exactly one resident block, not zero.
        let spec = rtx();
        let r = BlockRequirements {
            threads: 256,
            shared_bytes: spec.shared_mem_bytes,
            regs_per_thread: 32,
        };
        assert_eq!(max_resident_blocks(&spec, &r), 1);
        let r = BlockRequirements { shared_bytes: spec.shared_mem_bytes + 1, ..r };
        assert_eq!(max_resident_blocks(&spec, &r), 0, "one byte over: unlaunchable");
    }

    #[test]
    fn exactly_at_the_register_file_limit_still_launches() {
        // 64 regs × 1024 threads = 65,536 = the whole register file.
        let spec = rtx();
        let r = BlockRequirements { threads: 1024, shared_bytes: 0, regs_per_thread: 64 };
        assert_eq!(spec.registers_per_sm, 64 * 1024);
        assert_eq!(max_resident_blocks(&spec, &r), 1);
        let r = BlockRequirements { regs_per_thread: 65, ..r };
        assert_eq!(max_resident_blocks(&spec, &r), 0, "one reg/thread over: unlaunchable");
    }

    #[test]
    fn zero_thread_blocks_have_zero_residency() {
        let r = BlockRequirements { threads: 0, shared_bytes: 0, regs_per_thread: 32 };
        assert_eq!(max_resident_blocks(&rtx(), &r), 0);
        assert_eq!(occupancy(&rtx(), &r), 0.0);
    }

    #[test]
    fn more_shared_bytes_never_increases_residency() {
        // Monotonicity: walking the shared footprint up can only shrink (or
        // hold) the resident-block count, and it ends at zero.
        let spec = rtx();
        let mut prev = u32::MAX;
        for shared_kib in 0..=128 {
            let r = BlockRequirements {
                threads: 128,
                shared_bytes: shared_kib * 1024,
                regs_per_thread: 32,
            };
            let resident = max_resident_blocks(&spec, &r);
            assert!(
                resident <= prev,
                "residency must be monotone in shared bytes ({shared_kib} KiB: {resident} > {prev})"
            );
            prev = resident;
        }
        assert_eq!(prev, 0, "beyond the shared capacity nothing fits");
    }

    #[test]
    fn fit_block_width_gives_light_kernels_full_blocks() {
        let spec = rtx();
        let width = fit_block_width(&spec, BlockRequirements::light).unwrap();
        assert_eq!(width, spec.max_threads_per_block);
    }

    #[test]
    fn fit_block_width_narrows_register_heavy_kernels() {
        // 255 regs/thread: 65,536 / 255 = 257 threads; widest warp multiple
        // below that is 256.
        let spec = rtx();
        let width = fit_block_width(&spec, |t| BlockRequirements {
            threads: t,
            shared_bytes: 0,
            regs_per_thread: 255,
        })
        .unwrap();
        assert_eq!(width, 256);
        assert!(
            max_resident_blocks(
                &spec,
                &BlockRequirements { threads: width, shared_bytes: 0, regs_per_thread: 255 }
            ) >= 1
        );
    }

    #[test]
    fn fit_block_width_narrows_when_shared_scales_with_threads() {
        // 1 KiB of shared staging per thread on a 100 KiB SM: at most 100
        // threads; the widest warp multiple is 96.
        let spec = rtx();
        let width = fit_block_width(&spec, |t| BlockRequirements {
            threads: t,
            shared_bytes: t as usize * 1024,
            regs_per_thread: 32,
        })
        .unwrap();
        assert_eq!(width, 96);
    }

    #[test]
    fn fit_block_width_rejects_impossible_shapes() {
        let spec = rtx();
        let err = fit_block_width(&spec, |t| BlockRequirements {
            threads: t,
            shared_bytes: spec.shared_mem_bytes + 1,
            regs_per_thread: 32,
        })
        .unwrap_err();
        assert!(err.to_string().contains("exceeds the SM's resources"));
    }
}
