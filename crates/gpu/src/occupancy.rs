//! Occupancy: how many blocks fit on one SM at once.
//!
//! The classic CUDA occupancy calculation, reduced to the three resources
//! our model tracks: resident threads, shared memory, and the register
//! file. The grid scheduler uses this to size its waves — a kernel that
//! hogs shared memory (a big hot table) runs fewer blocks concurrently.

use crate::spec::DeviceSpec;

/// Per-block resource requirements of a kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockRequirements {
    /// Threads per block.
    pub threads: u32,
    /// Shared memory per block, in bytes.
    pub shared_bytes: usize,
    /// Registers per thread.
    pub regs_per_thread: u32,
}

impl BlockRequirements {
    /// Requirements of a block that uses `threads` threads and nothing else
    /// remarkable (a light kernel: 32 registers, no shared memory).
    pub fn light(threads: u32) -> Self {
        BlockRequirements { threads, shared_bytes: 0, regs_per_thread: 32 }
    }
}

/// Maximum blocks of the given shape resident on one SM. Returns 0 when a
/// single block already exceeds some resource (the launch would fail on real
/// hardware).
pub fn max_resident_blocks(spec: &DeviceSpec, req: &BlockRequirements) -> u32 {
    if req.threads == 0 || req.threads > spec.max_threads_per_block {
        return 0;
    }
    let by_threads = spec.max_threads_per_sm / req.threads.max(1);
    let by_shared = if req.shared_bytes == 0 {
        u32::MAX
    } else if req.shared_bytes > spec.shared_mem_bytes {
        0
    } else {
        (spec.shared_mem_bytes / req.shared_bytes) as u32
    };
    let block_regs = req.regs_per_thread.saturating_mul(req.threads);
    let by_regs = if block_regs == 0 {
        u32::MAX
    } else if block_regs > spec.registers_per_sm {
        0
    } else {
        spec.registers_per_sm / block_regs
    };
    by_threads.min(by_shared).min(by_regs).min(spec.max_blocks_per_sm)
}

/// Occupancy as a fraction of the SM's thread capacity (the figure the CUDA
/// occupancy calculator reports).
pub fn occupancy(spec: &DeviceSpec, req: &BlockRequirements) -> f64 {
    let blocks = max_resident_blocks(spec, req);
    f64::from(blocks * req.threads) / f64::from(spec.max_threads_per_sm)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rtx() -> DeviceSpec {
        DeviceSpec::rtx3090()
    }

    #[test]
    fn light_blocks_hit_the_thread_cap() {
        // 256-thread light blocks: 1536/256 = 6 blocks, full occupancy.
        let r = BlockRequirements::light(256);
        assert_eq!(max_resident_blocks(&rtx(), &r), 6);
        assert!((occupancy(&rtx(), &r) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shared_memory_limits_residency() {
        // A block using 60 KB of the 100 KB shared memory: only one fits.
        let r = BlockRequirements { threads: 256, shared_bytes: 60 * 1024, regs_per_thread: 32 };
        assert_eq!(max_resident_blocks(&rtx(), &r), 1);
        assert!(occupancy(&rtx(), &r) < 0.2);
    }

    #[test]
    fn registers_limit_residency() {
        // 128 regs/thread × 512 threads = 64k regs: one block per SM.
        let r = BlockRequirements { threads: 512, shared_bytes: 0, regs_per_thread: 128 };
        assert_eq!(max_resident_blocks(&rtx(), &r), 1);
    }

    #[test]
    fn oversized_blocks_cannot_launch() {
        let r = BlockRequirements { threads: 4096, shared_bytes: 0, regs_per_thread: 32 };
        assert_eq!(max_resident_blocks(&rtx(), &r), 0);
        let r = BlockRequirements { threads: 64, shared_bytes: 101 * 1024, regs_per_thread: 32 };
        assert_eq!(max_resident_blocks(&rtx(), &r), 0);
        let r = BlockRequirements { threads: 1024, shared_bytes: 0, regs_per_thread: 65 };
        assert_eq!(max_resident_blocks(&rtx(), &r), 0, "66560 regs exceed the file");
    }

    #[test]
    fn hardware_block_cap_applies() {
        // Tiny blocks would fit 1536/32 = 48 times by threads alone, but the
        // hardware caps resident blocks at 16.
        let r = BlockRequirements::light(32);
        assert_eq!(max_resident_blocks(&rtx(), &r), 16);
    }
}
