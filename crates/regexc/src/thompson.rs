//! Thompson construction: regex AST → epsilon-NFA.

use gspecpal_fsm::nfa::{Nfa, NfaBuilder};
use gspecpal_fsm::StateId;

use crate::ast::Ast;

/// An NFA fragment under construction: entry state and exit state. The exit
/// has no outgoing edges until the fragment is composed.
#[derive(Clone, Copy, Debug)]
struct Frag {
    start: StateId,
    end: StateId,
}

/// Builds fragments for one or more ASTs into a shared NFA, alternating all
/// of them (`p₁|…|pₖ`), optionally preceded by an unanchored `Σ*` self-loop.
pub struct ThompsonCompiler {
    builder: NfaBuilder,
}

impl Default for ThompsonCompiler {
    fn default() -> Self {
        Self::new()
    }
}

impl ThompsonCompiler {
    /// Creates an empty compiler.
    pub fn new() -> Self {
        ThompsonCompiler { builder: NfaBuilder::new() }
    }

    fn frag(&mut self, ast: &Ast) -> Frag {
        match ast {
            Ast::Empty => {
                let s = self.builder.add_state(false);
                let e = self.builder.add_state(false);
                self.builder.add_epsilon(s, e);
                Frag { start: s, end: e }
            }
            Ast::Class(c) => {
                let s = self.builder.add_state(false);
                let e = self.builder.add_state(false);
                for &(lo, hi) in c.ranges() {
                    self.builder.add_range(s, lo, hi, e);
                }
                Frag { start: s, end: e }
            }
            Ast::Concat(parts) => {
                let mut frags = parts.iter().map(|p| self.frag(p)).collect::<Vec<_>>();
                if frags.is_empty() {
                    return self.frag(&Ast::Empty);
                }
                let first = frags[0];
                let mut prev = first;
                for f in frags.drain(1..) {
                    self.builder.add_epsilon(prev.end, f.start);
                    prev = f;
                }
                Frag { start: first.start, end: prev.end }
            }
            Ast::Alternate(branches) => {
                let s = self.builder.add_state(false);
                let e = self.builder.add_state(false);
                for b in branches {
                    let f = self.frag(b);
                    self.builder.add_epsilon(s, f.start);
                    self.builder.add_epsilon(f.end, e);
                }
                Frag { start: s, end: e }
            }
            Ast::Repeat { node, min, max } => self.repeat_frag(node, *min, *max),
        }
    }

    fn repeat_frag(&mut self, node: &Ast, min: u32, max: Option<u32>) -> Frag {
        match (min, max) {
            // Kleene star.
            (0, None) => {
                let s = self.builder.add_state(false);
                let e = self.builder.add_state(false);
                let f = self.frag(node);
                self.builder.add_epsilon(s, f.start);
                self.builder.add_epsilon(s, e);
                self.builder.add_epsilon(f.end, f.start);
                self.builder.add_epsilon(f.end, e);
                Frag { start: s, end: e }
            }
            // Plus: one copy followed by a star.
            (1, None) => {
                let f = self.frag(node);
                let star = self.repeat_frag(node, 0, None);
                self.builder.add_epsilon(f.end, star.start);
                Frag { start: f.start, end: star.end }
            }
            // min ≥ 2 unbounded: (min-1 copies) then plus.
            (m, None) => {
                let prefix = self.repeat_frag(node, m - 1, Some(m - 1));
                let plus = self.repeat_frag(node, 1, None);
                self.builder.add_epsilon(prefix.end, plus.start);
                Frag { start: prefix.start, end: plus.end }
            }
            // Bounded: min required copies, then (max-min) optional copies.
            (m, Some(x)) => {
                debug_assert!(x >= m);
                let s = self.builder.add_state(false);
                let e = self.builder.add_state(false);
                let mut cursor = s;
                for _ in 0..m {
                    let f = self.frag(node);
                    self.builder.add_epsilon(cursor, f.start);
                    cursor = f.end;
                }
                for _ in m..x {
                    let f = self.frag(node);
                    self.builder.add_epsilon(cursor, f.start);
                    self.builder.add_epsilon(cursor, e); // skip the rest
                    cursor = f.end;
                }
                self.builder.add_epsilon(cursor, e);
                Frag { start: s, end: e }
            }
        }
    }

    /// Compiles `asts` as the alternation `p₁|…|pₖ`. When `unanchored` is
    /// set, the start state gets a `Σ` self-loop first — the `Σ*(p₁|…|pₖ)`
    /// search construction used by the paper's workloads.
    pub fn compile(self, asts: &[Ast], unanchored: bool) -> Nfa {
        let tagged: Vec<(Ast, bool)> = asts.iter().map(|a| (a.clone(), !unanchored)).collect();
        self.compile_mixed(&tagged)
    }

    /// Compiles a mix of anchored and floating patterns: each `(ast, true)`
    /// can only match starting at position 0 (a `^`-anchored rule), while
    /// `(ast, false)` matches anywhere (`Σ* ast`). The construction uses an
    /// origin state for the anchored fragments and a self-looping hub for
    /// the floating ones; the origin is left behind after the first byte.
    pub fn compile_mixed(mut self, asts: &[(Ast, bool)]) -> Nfa {
        assert!(!asts.is_empty(), "need at least one pattern");
        let origin = self.builder.add_state(false);
        let any_floating = asts.iter().any(|(_, anchored)| !anchored);
        let hub = if any_floating {
            let hub = self.builder.add_state(false);
            self.builder.add_range(hub, 0, 255, hub);
            self.builder.add_epsilon(origin, hub);
            Some(hub)
        } else {
            None
        };
        for (ast, anchored) in asts {
            let f = self.frag(ast);
            let from = if *anchored { origin } else { hub.expect("floating needs a hub") };
            self.builder.add_epsilon(from, f.start);
            self.builder.set_accepting(f.end, true);
        }
        self.builder.build(origin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn nfa_for(pattern: &str, unanchored: bool) -> Nfa {
        let ast = parse(pattern).unwrap();
        ThompsonCompiler::new().compile(&[ast], unanchored)
    }

    #[test]
    fn anchored_literal() {
        let n = nfa_for("abc", false);
        assert!(n.accepts(b"abc"));
        assert!(!n.accepts(b"abcd"));
        assert!(!n.accepts(b"xabc"));
    }

    #[test]
    fn unanchored_search() {
        let n = nfa_for("abc", true);
        assert!(n.accepts(b"abc"));
        assert!(n.accepts(b"xxabc"));
        assert!(!n.accepts(b"abcd"), "search accepts only at a match end");
    }

    #[test]
    fn star_and_plus() {
        let n = nfa_for("ab*c", false);
        assert!(n.accepts(b"ac"));
        assert!(n.accepts(b"abbbc"));
        assert!(!n.accepts(b"a"));
        let n = nfa_for("ab+c", false);
        assert!(!n.accepts(b"ac"));
        assert!(n.accepts(b"abc"));
    }

    #[test]
    fn bounded_repeat() {
        let n = nfa_for("a{2,4}", false);
        assert!(!n.accepts(b"a"));
        assert!(n.accepts(b"aa"));
        assert!(n.accepts(b"aaa"));
        assert!(n.accepts(b"aaaa"));
        assert!(!n.accepts(b"aaaaa"));
    }

    #[test]
    fn exact_repeat() {
        let n = nfa_for("(ab){3}", false);
        assert!(n.accepts(b"ababab"));
        assert!(!n.accepts(b"abab"));
        assert!(!n.accepts(b"abababab"));
    }

    #[test]
    fn min_unbounded_repeat() {
        let n = nfa_for("a{3,}", false);
        assert!(!n.accepts(b"aa"));
        assert!(n.accepts(b"aaa"));
        assert!(n.accepts(b"aaaaaaa"));
    }

    #[test]
    fn alternation_of_patterns() {
        let asts = vec![parse("cat").unwrap(), parse("dog").unwrap()];
        let n = ThompsonCompiler::new().compile(&asts, false);
        assert!(n.accepts(b"cat"));
        assert!(n.accepts(b"dog"));
        assert!(!n.accepts(b"cow"));
    }

    #[test]
    fn empty_pattern_matches_empty() {
        let n = nfa_for("", false);
        assert!(n.accepts(b""));
        assert!(!n.accepts(b"a"));
    }

    #[test]
    fn zero_repetition_matches_empty_only() {
        let n = nfa_for("a{0}", false);
        assert!(n.accepts(b""));
        assert!(!n.accepts(b"a"));
        let n = nfa_for("ba{0}c", false);
        assert!(n.accepts(b"bc"));
        assert!(!n.accepts(b"bac"));
    }

    #[test]
    fn alternation_with_empty_branch() {
        let n = nfa_for("ab|", false);
        assert!(n.accepts(b""));
        assert!(n.accepts(b"ab"));
        assert!(!n.accepts(b"a"));
    }

    #[test]
    fn anchored_and_floating_mix() {
        let a = parse("aa").unwrap();
        let b = parse("bb").unwrap();
        let n = ThompsonCompiler::new().compile_mixed(&[(a, true), (b, false)]);
        assert!(n.accepts(b"aa"), "anchored matches at start");
        assert!(!n.accepts(b"xaa"), "anchored cannot float");
        assert!(n.accepts(b"xbb"), "floating matches anywhere");
    }

    #[test]
    fn optional_chain() {
        let n = nfa_for("colou?r", false);
        assert!(n.accepts(b"color"));
        assert!(n.accepts(b"colour"));
    }
}
