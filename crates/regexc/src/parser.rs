//! Recursive-descent regex parser.
//!
//! Supports the constructs the paper's rule sets use: literals, escapes
//! (`\n \r \t \0 \\ \xHH` and the class shorthands `\d \D \w \W \s \S`),
//! character classes with ranges and negation, `.`, grouping, alternation,
//! and the repetition operators `* + ? {m} {m,} {m,n}`. Anchors are not
//! supported (the workloads use unanchored search semantics, where they would
//! be meaningless).

use crate::ast::{Ast, ClassSet};

/// A parse failure with byte offset into the pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the problem.
    pub at: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} (at byte {})", self.message, self.at)
    }
}

impl std::error::Error for ParseError {}

/// Maximum expansion of a bounded repetition, to keep NFA sizes sane.
pub const MAX_REPEAT: u32 = 256;

struct Parser<'a> {
    pat: &'a [u8],
    pos: usize,
}

/// Parses a pattern into an [`Ast`].
pub fn parse(pattern: &str) -> Result<Ast, ParseError> {
    let mut p = Parser { pat: pattern.as_bytes(), pos: 0 };
    let ast = p.alternation()?;
    if p.pos != p.pat.len() {
        return Err(p.err("unexpected trailing input"));
    }
    Ok(ast)
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError { at: self.pos, message: message.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.pat.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn alternation(&mut self) -> Result<Ast, ParseError> {
        let mut branches = vec![self.concat()?];
        while self.eat(b'|') {
            branches.push(self.concat()?);
        }
        if branches.len() == 1 {
            Ok(branches.pop().expect("one branch"))
        } else {
            Ok(Ast::Alternate(branches))
        }
    }

    fn concat(&mut self) -> Result<Ast, ParseError> {
        let mut parts = Vec::new();
        while let Some(b) = self.peek() {
            if b == b'|' || b == b')' {
                break;
            }
            parts.push(self.repeat()?);
        }
        match parts.len() {
            0 => Ok(Ast::Empty),
            1 => Ok(parts.pop().expect("one part")),
            _ => Ok(Ast::Concat(parts)),
        }
    }

    fn repeat(&mut self) -> Result<Ast, ParseError> {
        let atom = self.atom()?;
        let (min, max) = match self.peek() {
            Some(b'*') => {
                self.pos += 1;
                (0, None)
            }
            Some(b'+') => {
                self.pos += 1;
                (1, None)
            }
            Some(b'?') => {
                self.pos += 1;
                (0, Some(1))
            }
            Some(b'{') => {
                self.pos += 1;
                let (min, max) = self.counted_repeat()?;
                (min, max)
            }
            _ => return Ok(atom),
        };
        // Reject double repetition like `a**` for clarity.
        if matches!(self.peek(), Some(b'*' | b'+' | b'?' | b'{')) {
            return Err(self.err("nested repetition operator; use a group"));
        }
        Ok(Ast::Repeat { node: Box::new(atom), min, max })
    }

    fn counted_repeat(&mut self) -> Result<(u32, Option<u32>), ParseError> {
        let min = self.number()?;
        let max = if self.eat(b',') {
            if self.peek() == Some(b'}') {
                None
            } else {
                Some(self.number()?)
            }
        } else {
            Some(min)
        };
        if !self.eat(b'}') {
            return Err(self.err("expected '}' after repetition count"));
        }
        if let Some(m) = max {
            if m < min {
                return Err(self.err("repetition max is below min"));
            }
            if m > MAX_REPEAT {
                return Err(self.err("repetition count too large"));
            }
        }
        if min > MAX_REPEAT {
            return Err(self.err("repetition count too large"));
        }
        Ok((min, max))
    }

    fn number(&mut self) -> Result<u32, ParseError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a number"));
        }
        std::str::from_utf8(&self.pat[start..self.pos])
            .expect("digits are ascii")
            .parse::<u32>()
            .map_err(|_| self.err("number too large"))
    }

    fn atom(&mut self) -> Result<Ast, ParseError> {
        match self.bump() {
            None => Err(self.err("expected an atom")),
            Some(b'(') => {
                // Non-capturing group marker `(?:` is accepted and ignored;
                // captures are irrelevant for DFA construction.
                if self.peek() == Some(b'?') {
                    self.pos += 1;
                    if !self.eat(b':') {
                        return Err(self.err("only (?: groups are supported"));
                    }
                }
                let inner = self.alternation()?;
                if !self.eat(b')') {
                    return Err(self.err("expected ')'"));
                }
                Ok(inner)
            }
            Some(b'[') => Ok(Ast::Class(self.class()?)),
            Some(b'.') => Ok(Ast::Class(ClassSet::any())),
            Some(b'\\') => Ok(Ast::Class(self.escape()?)),
            Some(b @ (b'*' | b'+' | b'?')) => {
                self.pos -= 1;
                let _ = b;
                Err(self.err("repetition operator with nothing to repeat"))
            }
            Some(b'$') => {
                self.pos -= 1;
                Err(self.err(
                    "end anchors are not supported on streaming DFAs (acceptance is \
                     evaluated at end of input anyway); use \\$ for a literal dollar",
                ))
            }
            Some(b'^') => {
                self.pos -= 1;
                Err(self.err(
                    "'^' is only supported as the first character of a pattern \
                     (start-of-stream anchor); use \\^ for a literal caret",
                ))
            }
            Some(b')') => {
                self.pos -= 1;
                Err(self.err("unmatched ')'"))
            }
            Some(b) => Ok(Ast::literal(b)),
        }
    }

    fn escape(&mut self) -> Result<ClassSet, ParseError> {
        match self.bump() {
            None => Err(self.err("dangling escape")),
            Some(b'n') => Ok(ClassSet::byte(b'\n')),
            Some(b'r') => Ok(ClassSet::byte(b'\r')),
            Some(b't') => Ok(ClassSet::byte(b'\t')),
            Some(b'0') => Ok(ClassSet::byte(0)),
            Some(b'd') => Ok(digit_class()),
            Some(b'D') => Ok(digit_class().negate()),
            Some(b'w') => Ok(word_class()),
            Some(b'W') => Ok(word_class().negate()),
            Some(b's') => Ok(space_class()),
            Some(b'S') => Ok(space_class().negate()),
            Some(b'x') => {
                let hi = self.hex_digit()?;
                let lo = self.hex_digit()?;
                Ok(ClassSet::byte(hi * 16 + lo))
            }
            // Any punctuation escapes to itself (\\, \., \*, \[, ...).
            Some(b) if !b.is_ascii_alphanumeric() => Ok(ClassSet::byte(b)),
            Some(_) => Err(self.err("unsupported escape")),
        }
    }

    fn hex_digit(&mut self) -> Result<u8, ParseError> {
        match self.bump() {
            Some(b @ b'0'..=b'9') => Ok(b - b'0'),
            Some(b @ b'a'..=b'f') => Ok(b - b'a' + 10),
            Some(b @ b'A'..=b'F') => Ok(b - b'A' + 10),
            _ => Err(self.err("expected a hex digit")),
        }
    }

    fn class(&mut self) -> Result<ClassSet, ParseError> {
        let negated = self.eat(b'^');
        let mut ranges: Vec<(u8, u8)> = Vec::new();
        let mut first = true;
        loop {
            let b = match self.bump() {
                None => return Err(self.err("unterminated character class")),
                Some(b']') if !first => break,
                Some(b']') if first => {
                    // A leading ']' is a literal.
                    b']'
                }
                Some(b'\\') => {
                    let cls = self.escape()?;
                    // Shorthand classes can't form ranges; splice directly.
                    if cls.ranges().len() != 1 || cls.ranges()[0].0 != cls.ranges()[0].1 {
                        ranges.extend_from_slice(cls.ranges());
                        first = false;
                        continue;
                    }
                    cls.ranges()[0].0
                }
                Some(b) => b,
            };
            first = false;
            if self.peek() == Some(b'-') && self.pat.get(self.pos + 1) != Some(&b']') {
                self.pos += 1; // consume '-'
                let hi = match self.bump() {
                    None => return Err(self.err("unterminated range")),
                    Some(b'\\') => {
                        let cls = self.escape()?;
                        let rs = cls.ranges();
                        if rs.len() != 1 || rs[0].0 != rs[0].1 {
                            return Err(self.err("class shorthand cannot end a range"));
                        }
                        rs[0].0
                    }
                    Some(h) => h,
                };
                if hi < b {
                    return Err(self.err("range is out of order"));
                }
                ranges.push((b, hi));
            } else {
                ranges.push((b, b));
            }
        }
        let set = ClassSet::new(ranges);
        Ok(if negated { set.negate() } else { set })
    }
}

fn digit_class() -> ClassSet {
    ClassSet::new(vec![(b'0', b'9')])
}

fn word_class() -> ClassSet {
    ClassSet::new(vec![(b'0', b'9'), (b'a', b'z'), (b'A', b'Z'), (b'_', b'_')])
}

fn space_class() -> ClassSet {
    ClassSet::new(vec![(b' ', b' '), (b'\t', b'\t'), (b'\n', b'\n'), (b'\r', b'\r'), (11, 12)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Ast;

    #[test]
    fn literal_concat() {
        let ast = parse("abc").unwrap();
        assert_eq!(ast, Ast::literal_bytes(b"abc"));
    }

    #[test]
    fn alternation_branches() {
        let ast = parse("a|b|c").unwrap();
        match ast {
            Ast::Alternate(bs) => assert_eq!(bs.len(), 3),
            other => panic!("expected alternation, got {other:?}"),
        }
    }

    #[test]
    fn empty_branch_is_empty_ast() {
        let ast = parse("a|").unwrap();
        match ast {
            Ast::Alternate(bs) => assert_eq!(bs[1], Ast::Empty),
            other => panic!("expected alternation, got {other:?}"),
        }
    }

    #[test]
    fn star_plus_question() {
        assert!(matches!(parse("a*").unwrap(), Ast::Repeat { min: 0, max: None, .. }));
        assert!(matches!(parse("a+").unwrap(), Ast::Repeat { min: 1, max: None, .. }));
        assert!(matches!(parse("a?").unwrap(), Ast::Repeat { min: 0, max: Some(1), .. }));
    }

    #[test]
    fn counted_repeats() {
        assert!(matches!(parse("a{3}").unwrap(), Ast::Repeat { min: 3, max: Some(3), .. }));
        assert!(matches!(parse("a{2,}").unwrap(), Ast::Repeat { min: 2, max: None, .. }));
        assert!(matches!(parse("a{2,5}").unwrap(), Ast::Repeat { min: 2, max: Some(5), .. }));
    }

    #[test]
    fn bad_counted_repeats() {
        assert!(parse("a{5,2}").is_err());
        assert!(parse("a{9999999}").is_err());
        assert!(parse("a{2").is_err());
    }

    #[test]
    fn class_basice() {
        let ast = parse("[a-cx]").unwrap();
        match ast {
            Ast::Class(c) => {
                assert!(c.contains(b'a') && c.contains(b'c') && c.contains(b'x'));
                assert!(!c.contains(b'd'));
            }
            other => panic!("expected class, got {other:?}"),
        }
    }

    #[test]
    fn negated_class() {
        let ast = parse("[^0-9]").unwrap();
        match ast {
            Ast::Class(c) => {
                assert!(!c.contains(b'5'));
                assert!(c.contains(b'a'));
            }
            other => panic!("expected class, got {other:?}"),
        }
    }

    #[test]
    fn class_with_shorthand() {
        let ast = parse(r"[\d_]").unwrap();
        match ast {
            Ast::Class(c) => {
                assert!(c.contains(b'7') && c.contains(b'_'));
                assert!(!c.contains(b'a'));
            }
            other => panic!("expected class, got {other:?}"),
        }
    }

    #[test]
    fn leading_bracket_is_literal() {
        let ast = parse("[]a]").unwrap();
        match ast {
            Ast::Class(c) => {
                assert!(c.contains(b']') && c.contains(b'a'));
            }
            other => panic!("expected class, got {other:?}"),
        }
    }

    #[test]
    fn trailing_dash_is_literal() {
        let ast = parse("[a-]").unwrap();
        match ast {
            Ast::Class(c) => assert!(c.contains(b'a') && c.contains(b'-')),
            other => panic!("expected class, got {other:?}"),
        }
    }

    #[test]
    fn escapes() {
        assert_eq!(parse(r"\n").unwrap(), Ast::literal(b'\n'));
        assert_eq!(parse(r"\\").unwrap(), Ast::literal(b'\\'));
        assert_eq!(parse(r"\.").unwrap(), Ast::literal(b'.'));
        assert_eq!(parse(r"\x41").unwrap(), Ast::literal(b'A'));
        assert!(parse(r"\x4").is_err());
        assert!(parse(r"\q").is_err());
    }

    #[test]
    fn groups_and_noncapturing() {
        assert_eq!(parse("(ab)").unwrap(), parse("ab").unwrap());
        assert_eq!(parse("(?:ab)").unwrap(), parse("ab").unwrap());
        assert!(parse("(?<name>a)").is_err());
        assert!(parse("(ab").is_err());
        assert!(parse("ab)").is_err());
    }

    #[test]
    fn dangling_operators_rejected() {
        assert!(parse("*a").is_err());
        assert!(parse("a**").is_err());
        assert!(parse("+").is_err());
    }

    #[test]
    fn anchors_have_helpful_errors() {
        // Bare anchors are rejected mid-pattern (a leading ^ is stripped by
        // compile_set before parsing); escaped forms are literals.
        assert!(parse("a$").is_err());
        assert!(parse("a^b").is_err());
        assert_eq!(parse(r"\$").unwrap(), Ast::literal(b'$'));
        assert_eq!(parse(r"\^").unwrap(), Ast::literal(b'^'));
        let err = parse("a$").unwrap_err();
        assert!(err.message.contains("end anchors"), "{err}");
    }

    #[test]
    fn dot_matches_any() {
        match parse(".").unwrap() {
            Ast::Class(c) => {
                assert!(c.contains(0) && c.contains(255) && c.contains(b'\n'));
            }
            other => panic!("expected class, got {other:?}"),
        }
    }
}
