//! Regex abstract syntax.

/// A set of inclusive byte ranges (a character class after parsing; negation
/// is resolved at parse time).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClassSet {
    ranges: Vec<(u8, u8)>,
}

impl ClassSet {
    /// Builds a class from raw (possibly overlapping, unordered) ranges.
    pub fn new(mut ranges: Vec<(u8, u8)>) -> Self {
        ranges.retain(|&(lo, hi)| lo <= hi);
        ranges.sort_unstable();
        // Merge overlapping/adjacent ranges.
        let mut merged: Vec<(u8, u8)> = Vec::with_capacity(ranges.len());
        for (lo, hi) in ranges {
            match merged.last_mut() {
                Some((_, phi)) if u16::from(lo) <= u16::from(*phi) + 1 => {
                    *phi = (*phi).max(hi);
                }
                _ => merged.push((lo, hi)),
            }
        }
        ClassSet { ranges: merged }
    }

    /// A class containing a single byte.
    pub fn byte(b: u8) -> Self {
        ClassSet { ranges: vec![(b, b)] }
    }

    /// The full byte range (what `.` means here; we match bytes, not UTF-8
    /// scalars, just as RE2's byte-mode DFAs do).
    pub fn any() -> Self {
        ClassSet { ranges: vec![(0, 255)] }
    }

    /// The normalized ranges.
    pub fn ranges(&self) -> &[(u8, u8)] {
        &self.ranges
    }

    /// Whether the class matches no byte.
    pub fn is_empty_class(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Whether `b` is in the class.
    pub fn contains(&self, b: u8) -> bool {
        self.ranges.iter().any(|&(lo, hi)| lo <= b && b <= hi)
    }

    /// The complement class.
    pub fn negate(&self) -> Self {
        let mut out = Vec::new();
        let mut next = 0u16;
        for &(lo, hi) in &self.ranges {
            if u16::from(lo) > next {
                out.push((next as u8, lo - 1));
            }
            next = u16::from(hi) + 1;
        }
        if next <= 255 {
            out.push((next as u8, 255));
        }
        ClassSet { ranges: out }
    }

    /// Union with another class.
    pub fn union(&self, other: &ClassSet) -> Self {
        let mut ranges = self.ranges.clone();
        ranges.extend_from_slice(&other.ranges);
        ClassSet::new(ranges)
    }

    /// Adds both cases of ASCII letters (for case-insensitive compilation).
    pub fn case_fold(&self) -> Self {
        let mut extra = Vec::new();
        for &(lo, hi) in &self.ranges {
            for b in lo..=hi {
                if b.is_ascii_lowercase() {
                    extra.push((b.to_ascii_uppercase(), b.to_ascii_uppercase()));
                } else if b.is_ascii_uppercase() {
                    extra.push((b.to_ascii_lowercase(), b.to_ascii_lowercase()));
                }
                if b == u8::MAX {
                    break;
                }
            }
        }
        if extra.is_empty() {
            return self.clone();
        }
        let mut ranges = self.ranges.clone();
        ranges.extend(extra);
        ClassSet::new(ranges)
    }
}

/// Parsed regex syntax tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Ast {
    /// Matches the empty string.
    Empty,
    /// Matches one byte from the class.
    Class(ClassSet),
    /// Concatenation.
    Concat(Vec<Ast>),
    /// Alternation.
    Alternate(Vec<Ast>),
    /// Repetition `{min, max}`; `max = None` is unbounded.
    Repeat {
        /// The repeated subexpression.
        node: Box<Ast>,
        /// Minimum repetitions.
        min: u32,
        /// Maximum repetitions (`None` = unbounded).
        max: Option<u32>,
    },
}

impl Ast {
    /// Single literal byte.
    pub fn literal(b: u8) -> Ast {
        Ast::Class(ClassSet::byte(b))
    }

    /// Literal byte string.
    pub fn literal_bytes(bs: &[u8]) -> Ast {
        Ast::Concat(bs.iter().map(|&b| Ast::literal(b)).collect())
    }

    /// Renders the AST back to pattern syntax. `parse(ast.to_pattern())`
    /// yields a tree with the same language (round-trip property-tested).
    pub fn to_pattern(&self) -> String {
        fn class_to_pattern(c: &ClassSet) -> String {
            let ranges = c.ranges();
            if ranges.len() == 1 && ranges[0].0 == ranges[0].1 {
                return escape_byte(ranges[0].0);
            }
            if ranges == [(0, 255)] {
                return ".".to_string();
            }
            let mut out = String::from("[");
            for &(lo, hi) in ranges {
                if lo == hi {
                    out.push_str(&escape_in_class(lo));
                } else {
                    out.push_str(&format!("{}-{}", escape_in_class(lo), escape_in_class(hi)));
                }
            }
            out.push(']');
            out
        }
        fn escape_byte(b: u8) -> String {
            match b {
                b'(' | b')' | b'[' | b']' | b'{' | b'}' | b'*' | b'+' | b'?' | b'|' | b'.'
                | b'\\' | b'^' | b'$' => format!("\\{}", b as char),
                0x20..=0x7e => (b as char).to_string(),
                _ => format!("\\x{b:02x}"),
            }
        }
        fn escape_in_class(b: u8) -> String {
            match b {
                b'\\' | b']' | b'^' | b'-' => format!("\\{}", b as char),
                0x21..=0x7e => (b as char).to_string(),
                _ => format!("\\x{b:02x}"),
            }
        }
        fn needs_group(node: &Ast) -> bool {
            matches!(node, Ast::Concat(_) | Ast::Alternate(_) | Ast::Repeat { .. })
        }
        match self {
            Ast::Empty => "(?:)".to_string(),
            Ast::Class(c) => class_to_pattern(c),
            Ast::Concat(xs) => xs
                .iter()
                .map(|x| {
                    if matches!(x, Ast::Alternate(_)) {
                        format!("(?:{})", x.to_pattern())
                    } else {
                        x.to_pattern()
                    }
                })
                .collect(),
            Ast::Alternate(xs) => xs
                .iter()
                .map(|x| {
                    if matches!(x, Ast::Alternate(_)) {
                        format!("(?:{})", x.to_pattern())
                    } else {
                        x.to_pattern()
                    }
                })
                .collect::<Vec<_>>()
                .join("|"),
            Ast::Repeat { node, min, max } => {
                let body = if needs_group(node) {
                    format!("(?:{})", node.to_pattern())
                } else {
                    node.to_pattern()
                };
                match (min, max) {
                    (0, None) => format!("{body}*"),
                    (1, None) => format!("{body}+"),
                    (0, Some(1)) => format!("{body}?"),
                    (m, None) => format!("{body}{{{m},}}"),
                    (m, Some(x)) if m == x => format!("{body}{{{m}}}"),
                    (m, Some(x)) => format!("{body}{{{m},{x}}}"),
                }
            }
        }
    }

    /// Applies ASCII case folding to every class in the tree.
    pub fn case_fold(&self) -> Ast {
        match self {
            Ast::Empty => Ast::Empty,
            Ast::Class(c) => Ast::Class(c.case_fold()),
            Ast::Concat(xs) => Ast::Concat(xs.iter().map(Ast::case_fold).collect()),
            Ast::Alternate(xs) => Ast::Alternate(xs.iter().map(Ast::case_fold).collect()),
            Ast::Repeat { node, min, max } => {
                Ast::Repeat { node: Box::new(node.case_fold()), min: *min, max: *max }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_merges_overlaps() {
        let c = ClassSet::new(vec![(b'a', b'f'), (b'c', b'k'), (b'm', b'm')]);
        assert_eq!(c.ranges(), &[(b'a', b'k'), (b'm', b'm')]);
    }

    #[test]
    fn class_merges_adjacent() {
        let c = ClassSet::new(vec![(b'a', b'c'), (b'd', b'f')]);
        assert_eq!(c.ranges(), &[(b'a', b'f')]);
    }

    #[test]
    fn negate_round_trips() {
        let c = ClassSet::new(vec![(b'0', b'9'), (b'a', b'z')]);
        let n = c.negate();
        for b in 0..=255u8 {
            assert_eq!(c.contains(b), !n.contains(b), "byte {b}");
        }
        assert_eq!(n.negate(), c);
    }

    #[test]
    fn negate_full_range_is_empty() {
        assert!(ClassSet::any().negate().is_empty_class());
    }

    #[test]
    fn case_fold_adds_both_cases() {
        let c = ClassSet::byte(b'a').case_fold();
        assert!(c.contains(b'a'));
        assert!(c.contains(b'A'));
        assert!(!c.contains(b'b'));
    }

    #[test]
    fn case_fold_boundary_byte_255() {
        let c = ClassSet::new(vec![(250, 255)]).case_fold();
        assert!(c.contains(255));
    }

    #[test]
    fn to_pattern_basics() {
        use crate::parser::parse;
        assert_eq!(parse("abc").unwrap().to_pattern(), "abc");
        assert_eq!(parse("a|b").unwrap().to_pattern(), "a|b");
        assert_eq!(parse("a*").unwrap().to_pattern(), "a*");
        assert_eq!(parse("(ab)+").unwrap().to_pattern(), "(?:ab)+");
        assert_eq!(parse("a{2,5}").unwrap().to_pattern(), "a{2,5}");
        assert_eq!(parse("a{3}").unwrap().to_pattern(), "a{3}");
        assert_eq!(parse(".").unwrap().to_pattern(), ".");
    }

    #[test]
    fn to_pattern_escapes_metacharacters() {
        use crate::parser::parse;
        let p = parse(r"\.").unwrap().to_pattern();
        assert_eq!(p, r"\.");
        assert_eq!(parse(&p).unwrap(), Ast::literal(b'.'));
        // A binary byte renders as a hex escape.
        assert_eq!(Ast::literal(0x07).to_pattern(), r"\x07");
    }

    #[test]
    fn to_pattern_classes() {
        use crate::parser::parse;
        let p = parse("[a-dz]").unwrap().to_pattern();
        let back = parse(&p).unwrap();
        match back {
            Ast::Class(c) => {
                assert!(c.contains(b'a') && c.contains(b'd') && c.contains(b'z'));
                assert!(!c.contains(b'e'));
            }
            other => panic!("expected class, got {other:?}"),
        }
    }

    #[test]
    fn union_combines() {
        let c = ClassSet::byte(b'a').union(&ClassSet::byte(b'b'));
        assert_eq!(c.ranges(), &[(b'a', b'b')]);
    }
}
