//! End-to-end compilation: patterns → NFA → DFA → minimal DFA.
//!
//! `compile_set` is the entry point the workload suite uses: like §V-B, each
//! benchmark FSM "is generated from a disjunction of multiple randomly
//! selected regular expressions".

use gspecpal_fsm::minimize::minimize;
use gspecpal_fsm::subset::determinize_with_limit;
use gspecpal_fsm::Dfa;

use crate::ast::Ast;
use crate::parser::parse;
use crate::thompson::ThompsonCompiler;
use crate::RegexError;

/// Whether the machine decides whole-input membership or reports substring
/// matches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum MatchSemantics {
    /// Accepts iff the entire input is in the language.
    Anchored,
    /// Accepting whenever the consumed prefix ends with a match
    /// (`Σ*(p₁|…|pₖ)`). This is what the paper's rule-set DFAs do.
    #[default]
    Search,
}

/// Compilation options.
#[derive(Clone, Copy, Debug)]
pub struct CompileConfig {
    /// Match semantics (default [`MatchSemantics::Search`]).
    pub semantics: MatchSemantics,
    /// ASCII case-insensitive matching.
    pub case_insensitive: bool,
    /// Determinization state budget.
    pub state_limit: usize,
    /// Run Hopcroft minimization on the result (default on).
    pub minimize: bool,
}

impl Default for CompileConfig {
    fn default() -> Self {
        CompileConfig {
            semantics: MatchSemantics::Search,
            case_insensitive: false,
            state_limit: gspecpal_fsm::subset::DEFAULT_STATE_LIMIT,
            minimize: true,
        }
    }
}

/// Compiles one pattern with the given configuration.
pub fn compile(pattern: &str, config: CompileConfig) -> Result<Dfa, RegexError> {
    compile_set(&[pattern], config)
}

/// Compiles the disjunction of `patterns` into a single DFA.
///
/// ```
/// use gspecpal_regex::{compile_set, CompileConfig};
///
/// let dfa = compile_set(&["attack", "exploit[0-9]+"], CompileConfig::default())?;
/// assert_eq!(dfa.count_matches(b"an attack and exploit42"), 3); // 42 ends two matches
/// # Ok::<(), gspecpal_regex::RegexError>(())
/// ```
///
/// Under [`MatchSemantics::Search`], a leading `^` anchors that pattern to
/// the start of the stream (it can only match at position 0) while the other
/// patterns float; under [`MatchSemantics::Anchored`] every pattern is
/// whole-input anyway and a leading `^` is redundant but accepted.
pub fn compile_set(patterns: &[&str], config: CompileConfig) -> Result<Dfa, RegexError> {
    assert!(!patterns.is_empty(), "need at least one pattern");
    let mut asts = Vec::with_capacity(patterns.len());
    for p in patterns {
        let (anchored, body) = match p.strip_prefix('^') {
            Some(rest) => (true, rest),
            None => (false, *p),
        };
        let mut ast = parse(body)?;
        if config.case_insensitive {
            ast = ast.case_fold();
        }
        asts.push((ast, anchored));
    }
    let all_anchored = config.semantics == MatchSemantics::Anchored;
    let tagged: Vec<(Ast, bool)> =
        asts.into_iter().map(|(a, anch)| (a, anch || all_anchored)).collect();
    let nfa = ThompsonCompiler::new().compile_mixed(&tagged);
    let dfa = determinize_with_limit(&nfa, config.state_limit)?;
    Ok(if config.minimize { minimize(&dfa) } else { dfa })
}

/// Compiles already-parsed ASTs (used by workload generators that synthesize
/// patterns structurally).
pub fn compile_asts(asts: &[Ast], config: CompileConfig) -> Result<Dfa, RegexError> {
    let unanchored = config.semantics == MatchSemantics::Search;
    let nfa = ThompsonCompiler::new().compile(asts, unanchored);
    let dfa = determinize_with_limit(&nfa, config.state_limit)?;
    Ok(if config.minimize { minimize(&dfa) } else { dfa })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn search(patterns: &[&str]) -> Dfa {
        compile_set(patterns, CompileConfig::default()).unwrap()
    }

    fn anchored(pattern: &str) -> Dfa {
        compile(
            pattern,
            CompileConfig { semantics: MatchSemantics::Anchored, ..CompileConfig::default() },
        )
        .unwrap()
    }

    #[test]
    fn anchored_whole_input() {
        let d = anchored("ab*c");
        assert!(d.accepts(b"ac"));
        assert!(d.accepts(b"abbc"));
        assert!(!d.accepts(b"xac"));
        assert!(!d.accepts(b"acx"));
    }

    #[test]
    fn search_counts_match_ends() {
        let d = search(&["ab"]);
        // "ab" ends at positions 2 and 6 in "abxxab".
        assert_eq!(d.count_matches(b"abxxab"), 2);
        assert_eq!(d.count_matches(b"bbbb"), 0);
    }

    #[test]
    fn disjunction_of_rules() {
        let d = search(&["attack", "exploit[0-9]+", "GET /admin"]);
        assert_eq!(d.count_matches(b"an attack here"), 1);
        assert_eq!(d.count_matches(b"exploit42"), 2, "match ends at each digit");
        assert_eq!(d.count_matches(b"GET /admin HTTP"), 1);
        assert_eq!(d.count_matches(b"benign traffic"), 0);
    }

    #[test]
    fn case_insensitive_search() {
        let d = compile_set(
            &["Attack"],
            CompileConfig { case_insensitive: true, ..CompileConfig::default() },
        )
        .unwrap();
        assert!(d.count_matches(b"ATTACK") > 0);
        assert!(d.count_matches(b"attack") > 0);
        assert!(d.count_matches(b"aTtAcK") > 0);
    }

    #[test]
    fn minimization_shrinks_or_preserves() {
        let cfg_min = CompileConfig::default();
        let cfg_raw = CompileConfig { minimize: false, ..CompileConfig::default() };
        let dm = compile_set(&["abc|abd|abe"], cfg_min).unwrap();
        let dr = compile_set(&["abc|abd|abe"], cfg_raw).unwrap();
        assert!(dm.n_states() <= dr.n_states());
        for input in [&b"abc"[..], b"xxabd", b"abe!", b"abf"] {
            assert_eq!(dm.accepts(input), dr.accepts(input));
        }
    }

    #[test]
    fn search_semantics_match_bruteforce() {
        // Brute-force check: search accepts after prefix P iff some suffix of
        // P is in the anchored language.
        let pattern = "a[bc]+d?";
        let s = search(&[pattern]);
        let a = anchored(pattern);
        let input = b"zabcbdxacdyacbcb";
        let mut state = s.start();
        for i in 0..input.len() {
            state = s.next(state, input[i]);
            let brute = (0..=i).any(|j| a.accepts(&input[j..=i]));
            assert_eq!(s.is_accepting(state), brute, "prefix end {i}");
        }
    }

    #[test]
    fn caret_anchors_to_stream_start() {
        let d = search(&["^GET ", "attack"]);
        // "GET " fires only at position 0.
        assert_eq!(d.count_matches(b"GET /index"), 1);
        assert_eq!(d.count_matches(b"xGET /index"), 0);
        // The floating rule still fires anywhere.
        assert_eq!(d.count_matches(b"an attack and an attack"), 2);
        // Both on one stream.
        assert_eq!(d.count_matches(b"GET /attack"), 2);
    }

    #[test]
    fn all_anchored_set_has_no_floating_hub() {
        let d = search(&["^ab", "^cd"]);
        assert_eq!(d.count_matches(b"ab"), 1);
        assert_eq!(d.count_matches(b"cd"), 1);
        assert_eq!(d.count_matches(b"xab xcd"), 0);
    }

    #[test]
    fn caret_in_anchored_semantics_is_redundant() {
        let with = anchored("^abc");
        let without = anchored("abc");
        for input in [&b"abc"[..], b"xabc", b"abcx"] {
            assert_eq!(with.accepts(input), without.accepts(input));
        }
    }

    #[test]
    fn hex_escapes_match_binary() {
        let d = search(&[r"\x00\xff"]);
        assert_eq!(d.count_matches(&[0x00, 0xff, 0x00, 0x00, 0xff]), 2);
    }

    #[test]
    fn state_limit_propagates() {
        let cfg = CompileConfig { state_limit: 4, ..CompileConfig::default() };
        let err = compile_set(&["a.{10}b"], cfg);
        assert!(matches!(err, Err(RegexError::Fsm(_))));
    }

    #[test]
    fn parse_errors_propagate() {
        assert!(matches!(compile("a(", CompileConfig::default()), Err(RegexError::Parse(_))));
    }
}
