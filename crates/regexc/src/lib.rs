//! Regex-to-DFA compiler: the RE2 substitute for the GSpecPal reproduction.
//!
//! The paper's evaluation (§V-B) compiles disjunctions of Perl-compatible
//! regular expressions to DFAs with RE2. This crate provides the same
//! pipeline from scratch: a regex parser ([`parser`]), Thompson NFA
//! construction ([`thompson`]), and determinization + minimization into the
//! dense-table [`gspecpal_fsm::Dfa`] the framework consumes ([`mod@compile`]).
//!
//! Two match semantics are offered:
//!
//! * **anchored** — the DFA accepts iff the whole input is in the language;
//! * **search** (default, what the paper's workloads use) — the DFA is in an
//!   accepting state after position `i` iff some pattern matches a substring
//!   ending at `i` (the `Σ*(p₁|…|pₖ)` construction).

#![warn(missing_docs)]

pub mod ast;
pub mod compile;
pub mod parser;
pub mod thompson;

pub use ast::Ast;
pub use compile::{compile, compile_asts, compile_set, CompileConfig, MatchSemantics};
pub use parser::{parse, ParseError};

/// Errors from the full compilation pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegexError {
    /// The pattern failed to parse.
    Parse(ParseError),
    /// Determinization blew the state budget.
    Fsm(gspecpal_fsm::FsmError),
}

impl std::fmt::Display for RegexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegexError::Parse(e) => write!(f, "parse error: {e}"),
            RegexError::Fsm(e) => write!(f, "compilation error: {e}"),
        }
    }
}

impl std::error::Error for RegexError {}

impl From<ParseError> for RegexError {
    fn from(e: ParseError) -> Self {
        RegexError::Parse(e)
    }
}

impl From<gspecpal_fsm::FsmError> for RegexError {
    fn from(e: gspecpal_fsm::FsmError) -> Self {
        RegexError::Fsm(e)
    }
}
