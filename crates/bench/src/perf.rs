//! Machine-readable perf reports (`BENCH_<experiment>.json`) and the CI
//! regression gate that consumes them.
//!
//! # Schema (version 1)
//!
//! Every report is one JSON object with, in order:
//!
//! - `schema_version` (integer): currently `1`. Consumers must reject
//!   versions they do not know.
//! - `experiment` (string): `"fig8"`, `"ablation"`, `"motivation"`,
//!   `"serve"`, `"chaos"`, `"adaptive"`, or `"cluster"`.
//! - `config` (object): `seed`, `input_bytes`, `n_chunks`, `device` — the
//!   [`ExperimentConfig`] the numbers were produced with.
//! - `total_cycles` (integer): the experiment's headline cycle total, the
//!   single number the CI perf gate compares against the committed baseline.
//! - experiment-specific payload (see the builder functions below). Wherever
//!   a scheme run appears it carries a `phases` object keyed by
//!   [`gspecpal_gpu::Phase::name`] in [`gspecpal_gpu::Phase::ALL`] order; each phase holds the
//!   [`PhaseCounters`] fields plus the derived `utilization` and
//!   `coalesced_fraction`, and the per-phase `cycles` sum to the run's
//!   `total_cycles` exactly.
//!
//! Key order is fixed by construction ([`Json::Obj`] preserves insertion
//! order), so identical measurements render byte-identical reports — which
//! is what makes the committed baselines diffable and the gate trustworthy.

use std::fmt::Write as _;

use gspecpal::SchemeKind;
use gspecpal_gpu::{PhaseCounters, PhaseProfile};

use crate::adaptive_exp::{AdaptiveExperimentReport, AdaptiveRunSummary};
use crate::chaos_exp::ChaosExperimentReport;
use crate::cluster_exp::{ClusterExperimentConfig, ClusterExperimentReport};
use crate::experiments::{AblationReport, ExperimentConfig, Fig8Report};
use crate::extras::MotivationReport;
use crate::failover_exp::{FailoverExperimentConfig, FailoverExperimentReport};
use crate::hostperf::{FleetPerfReport, HostPerfConfig, HostPerfReport};
use crate::serve_exp::ServeExperimentReport;

/// Version stamped into every report; bump on any schema change.
pub const SCHEMA_VERSION: u64 = 1;

/// Cycle-total regressions beyond this percentage fail the CI gate.
pub const GATE_TOLERANCE_PERCENT: u64 = 5;

/// A JSON value with insertion-ordered object keys, rendered with a stable
/// pretty-printer. This is all the JSON the perf reports need — the crate
/// deliberately avoids external serialization dependencies.
#[derive(Clone, Debug)]
pub enum Json {
    /// A string (escaped on render).
    Str(String),
    /// An unsigned integer.
    U64(u64),
    /// A float, rendered via Rust's shortest round-trip `Display` (never
    /// scientific notation, so always valid JSON); non-finite values render
    /// as `null`.
    F64(f64),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys render in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Renders the value as pretty-printed JSON with a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(0, &mut out);
        out.push('\n');
        out
    }

    fn write(&self, indent: usize, out: &mut String) {
        match self {
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::F64(x) if !x.is_finite() => out.push_str("null"),
            Json::F64(x) => {
                let _ = write!(out, "{x}");
            }
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(indent + 1, out);
                    item.write(indent + 1, out);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                pad(indent, out);
                out.push(']');
            }
            Json::Obj(fields) if fields.is_empty() => out.push_str("{}"),
            Json::Obj(fields) => {
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    pad(indent + 1, out);
                    Json::Str(key.clone()).write(indent + 1, out);
                    out.push_str(": ");
                    value.write(indent + 1, out);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                pad(indent, out);
                out.push('}');
            }
        }
    }
}

fn pad(indent: usize, out: &mut String) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn counters_json(c: &PhaseCounters) -> Json {
    obj(vec![
        ("cycles", Json::U64(c.cycles)),
        ("rounds", Json::U64(c.rounds)),
        ("global_transactions", Json::U64(c.global_transactions)),
        ("global_coalesced_hits", Json::U64(c.global_coalesced_hits)),
        ("shared_accesses", Json::U64(c.shared_accesses)),
        ("alu_ops", Json::U64(c.alu_ops)),
        ("shuffles", Json::U64(c.shuffles)),
        ("atomics", Json::U64(c.atomics)),
        ("divergent_rounds", Json::U64(c.divergent_rounds)),
        ("active_thread_rounds", Json::U64(c.active_thread_rounds)),
        ("thread_rounds", Json::U64(c.thread_rounds)),
        ("utilization", Json::F64(c.utilization())),
        ("coalesced_fraction", Json::F64(c.coalesced_fraction())),
    ])
}

/// One scheme run: `total_cycles` plus the per-phase breakdown. The phase
/// cycles sum to `total_cycles` by the profile invariant.
fn run_json(total_cycles: u64, profile: &PhaseProfile) -> Json {
    debug_assert_eq!(profile.total_cycles(), total_cycles);
    let phases: Vec<(String, Json)> =
        profile.iter().map(|(p, c)| (p.name().to_string(), counters_json(c))).collect();
    obj(vec![("total_cycles", Json::U64(total_cycles)), ("phases", Json::Obj(phases))])
}

fn config_json(cfg: &ExperimentConfig) -> Json {
    obj(vec![
        ("seed", Json::U64(cfg.seed)),
        ("input_bytes", Json::U64(cfg.input_len as u64)),
        ("n_chunks", Json::U64(cfg.n_chunks as u64)),
        ("device", Json::Str(cfg.device.name.to_string())),
    ])
}

fn header(
    experiment: &str,
    cfg: &ExperimentConfig,
    total_cycles: u64,
) -> Vec<(&'static str, Json)> {
    vec![
        ("schema_version", Json::U64(SCHEMA_VERSION)),
        ("experiment", Json::Str(experiment.to_string())),
        ("config", config_json(cfg)),
        ("total_cycles", Json::U64(total_cycles)),
    ]
}

/// Builds the `fig8` report: one row per benchmark with all four schemes'
/// totals and phase splits, the selector's pick, and the headline summary.
/// `total_cycles` is the sum of all four schemes' totals over the suite.
pub fn fig8_json(cfg: &ExperimentConfig, r: &Fig8Report) -> Json {
    let total: u64 = r
        .rows
        .iter()
        .map(|row| row.scheme_profiles().iter().map(|(_, c, _)| *c).sum::<u64>())
        .sum();
    let rows: Vec<Json> = r
        .rows
        .iter()
        .map(|row| {
            let schemes: Vec<(String, Json)> = row
                .scheme_profiles()
                .iter()
                .map(|(s, cycles, profile)| (s.name().to_string(), run_json(*cycles, profile)))
                .collect();
            obj(vec![
                ("fsm", Json::Str(row.name.clone())),
                ("tier", Json::Str(row.tier.name().to_string())),
                ("selected", Json::Str(row.selected.to_string())),
                ("selected_cycles", Json::U64(row.selected_cycles)),
                ("schemes", Json::Obj(schemes)),
            ])
        })
        .collect();
    let mut fields = header("fig8", cfg, total);
    fields.push(("rows", Json::Arr(rows)));
    fields.push((
        "summary",
        obj(vec![
            ("selector_mean_speedup", Json::F64(r.selector_mean_speedup())),
            ("selector_accuracy", Json::F64(r.selector_accuracy())),
            ("mean_speedup_nf", Json::F64(r.mean_speedup(SchemeKind::Nf))),
            ("mean_speedup_sfa", Json::F64(r.mean_speedup(SchemeKind::Sfa))),
            ("max_speedup", Json::F64(r.max_speedup())),
        ]),
    ));
    obj(fields)
}

/// Builds the `ablation` report from the absolute per-layout measurements.
/// `total_cycles` sums both layouts over all benchmarks.
pub fn ablation_json(cfg: &ExperimentConfig, r: &AblationReport) -> Json {
    let total: u64 = r.details.iter().map(|d| d.transformed_cycles + d.hashed_cycles).sum();
    let rows: Vec<Json> = r
        .details
        .iter()
        .map(|d| {
            obj(vec![
                ("fsm", Json::Str(d.name.clone())),
                ("scheme", Json::Str(d.scheme.to_string())),
                (
                    "hashed_over_transformed",
                    Json::F64(d.hashed_cycles as f64 / d.transformed_cycles as f64),
                ),
                ("transformed", run_json(d.transformed_cycles, &d.transformed_profile)),
                ("hashed", run_json(d.hashed_cycles, &d.hashed_profile)),
            ])
        })
        .collect();
    let mut fields = header("ablation", cfg, total);
    fields.push(("rows", Json::Arr(rows)));
    fields.push(("mean_improvement", Json::F64(r.mean_improvement())));
    obj(fields)
}

/// Builds the `motivation` report. `total_cycles` sums the four absolute
/// cycle measurements of §II-B's two contrasts.
pub fn motivation_json(cfg: &ExperimentConfig, r: &MotivationReport) -> Json {
    let total = r.batch_cycles + r.gspecpal_cycles + r.nfa_cycles + r.dfa_seq_cycles;
    let mut fields = header("motivation", cfg, total);
    fields.push(("batch_cycles", Json::U64(r.batch_cycles)));
    fields.push(("gspecpal_cycles", Json::U64(r.gspecpal_cycles)));
    fields.push(("batch_throughput", Json::F64(r.batch_throughput)));
    fields.push(("gspecpal_throughput", Json::F64(r.gspecpal_throughput)));
    fields.push(("nfa_cycles", Json::U64(r.nfa_cycles)));
    fields.push(("dfa_seq_cycles", Json::U64(r.dfa_seq_cycles)));
    fields.push(("dfa_gspecpal_cycles", Json::U64(r.dfa_gspecpal_cycles)));
    fields.push(("nfa_avg_active", Json::F64(r.nfa_avg_active)));
    fields.push(("dfa_states", Json::U64(u64::from(r.dfa_states))));
    fields.push(("nfa_states", Json::U64(u64::from(r.nfa_states))));
    obj(fields)
}

/// Builds the `serve` report: one entry per `(policy, overlap)` run with the
/// timeline headline (makespan), latency percentiles, throughput, overlap
/// economics, and the engine-busy phase split (`Transfer` carries real copy
/// cycles). The headline `total_cycles` is the summed makespan of every run,
/// so the gate trips on regressions in either kernels or the copy/overlap
/// scheduling.
pub fn serve_json(cfg: &ExperimentConfig, r: &ServeExperimentReport) -> Json {
    let runs: Vec<Json> = r
        .runs
        .iter()
        .map(|run| {
            obj(vec![
                ("policy", Json::Str(run.policy.to_string())),
                ("overlap", Json::Str(run.overlap.to_string())),
                ("makespan_cycles", Json::U64(run.makespan_cycles)),
                ("batches", Json::U64(run.batches)),
                (
                    "delivery_latency",
                    obj(vec![
                        ("p50", Json::U64(run.p50)),
                        ("p95", Json::U64(run.p95)),
                        ("p99", Json::U64(run.p99)),
                        ("max", Json::U64(run.max)),
                    ]),
                ),
                ("bytes_per_cycle", Json::F64(run.bytes_per_cycle)),
                ("overlap_efficiency_permille", Json::U64(run.overlap_efficiency_permille)),
                ("backpressure_events", Json::U64(run.backpressure_events)),
                ("peak_queue_depth", Json::U64(run.peak_queue_depth)),
                ("busy", run_json(run.busy_cycles, &run.profile)),
            ])
        })
        .collect();
    let mut fields = header("serve", cfg, r.total_makespan());
    fields.push(("streams", Json::U64(r.streams)));
    fields.push(("trace_bytes", Json::U64(r.total_bytes)));
    fields.push(("runs", Json::Arr(runs)));
    obj(fields)
}

/// Builds the `chaos` report: one entry per scheme with the fault-free and
/// faulted cycle totals, the recovery counters, and the faulted run's phase
/// split. The headline `total_cycles` is the summed *faulted* total, so the
/// gate trips when recovery itself gets more expensive even if the
/// fault-free path is untouched.
pub fn chaos_json(cfg: &ExperimentConfig, r: &ChaosExperimentReport) -> Json {
    let runs: Vec<Json> = r
        .runs
        .iter()
        .map(|run| {
            obj(vec![
                ("scheme", Json::Str(run.scheme.name().to_string())),
                ("clean_cycles", Json::U64(run.clean_cycles)),
                ("overhead_permille", Json::U64(run.overhead_permille)),
                ("block_retries", Json::U64(run.block_retries)),
                ("watchdog_kills", Json::U64(run.watchdog_kills)),
                ("degraded_blocks", Json::U64(run.degraded_blocks)),
                ("fault_cycles", Json::U64(run.fault_cycles)),
                ("faulted", run_json(run.faulted_cycles, &run.faulted_profile)),
            ])
        })
        .collect();
    let mut fields = header("chaos", cfg, r.total_faulted_cycles());
    fields.push(("fault_permille", Json::U64(u64::from(r.fault_permille))));
    fields.push(("input_bytes", Json::U64(r.input_bytes)));
    fields.push(("clean_total_cycles", Json::U64(r.total_clean_cycles())));
    fields.push(("runs", Json::Arr(runs)));
    obj(fields)
}

fn adaptive_run_json(run: &AdaptiveRunSummary) -> Json {
    obj(vec![
        ("label", Json::Str(run.label.clone())),
        ("makespan_cycles", Json::U64(run.makespan_cycles)),
        ("batches", Json::U64(run.batches)),
        ("decisions_made", Json::U64(run.decisions_made)),
        ("explore_decisions", Json::U64(run.explore_decisions)),
        ("segment_cycles", Json::Arr(run.segment_cycles.iter().map(|&c| Json::U64(c)).collect())),
        ("busy", run_json(run.busy_cycles, &run.profile)),
    ])
}

/// Builds the `adaptive` report: the online-autotuning A/B — every static
/// scheme vs the feedback controller on the same tier-mixed trace, the
/// per-segment decision log, and the headline
/// `mean_speedup_adaptive_vs_best_static`. The gated `total_cycles` is the
/// adaptive makespan plus every static leg's, so the 5% gate trips on a
/// regression in either side of the comparison.
pub fn adaptive_json(cfg: &ExperimentConfig, r: &AdaptiveExperimentReport) -> Json {
    let segments: Vec<Json> = r
        .segments
        .iter()
        .map(|s| {
            let decisions: Vec<Json> = s
                .decisions
                .iter()
                .map(|d| {
                    obj(vec![
                        ("batch", Json::U64(d.batch as u64)),
                        ("arm", Json::U64(d.arm as u64)),
                        ("scheme", Json::Str(d.choice.scheme.name().to_string())),
                        ("spec_k", Json::U64(d.choice.spec_k as u64)),
                        ("stitch", Json::Str(format!("{:?}", d.choice.stitch))),
                        ("explore", Json::Str(d.explore.to_string())),
                        ("predicted_millicost", Json::U64(d.choice.predicted_millicost)),
                        ("observed_millicost", Json::U64(d.observation.millicost())),
                        ("bytes", Json::U64(d.observation.bytes)),
                        ("compute_cycles", Json::U64(d.observation.compute_cycles)),
                        ("verify_cycles", Json::U64(d.observation.verify_cycles)),
                        ("recovery_cycles", Json::U64(d.observation.recovery_cycles)),
                        ("stitch_cycles", Json::U64(d.observation.stitch_cycles)),
                        ("verification_checks", Json::U64(d.observation.verification_checks)),
                        ("verification_matches", Json::U64(d.observation.verification_matches)),
                    ])
                })
                .collect();
            obj(vec![
                ("machine", Json::U64(s.machine as u64)),
                ("fsm", Json::Str(s.fsm.clone())),
                ("tier", Json::Str(s.tier.to_string())),
                ("adaptive_cycles", Json::U64(s.adaptive_cycles)),
                ("best_static_cycles", Json::U64(s.best_static_cycles)),
                ("decisions", Json::Arr(decisions)),
            ])
        })
        .collect();
    let mut fields = header("adaptive", cfg, r.total_cycles());
    fields.push(("streams", Json::U64(r.streams)));
    fields.push(("trace_bytes", Json::U64(r.total_bytes)));
    fields.push((
        "mean_speedup_adaptive_vs_best_static",
        Json::F64(r.mean_speedup_adaptive_vs_best_static()),
    ));
    fields.push((
        "adaptive_beats_every_static",
        Json::Str(r.adaptive_beats_every_static().to_string()),
    ));
    fields.push(("best_static", Json::Str(r.best_static().label.clone())));
    fields.push(("static_runs", Json::Arr(r.static_runs.iter().map(adaptive_run_json).collect())));
    fields.push(("adaptive", adaptive_run_json(&r.adaptive)));
    fields.push(("segments", Json::Arr(segments)));
    obj(fields)
}

fn latency_summary_json(s: &gspecpal_serve::LatencySummary) -> Json {
    obj(vec![
        ("p50", Json::U64(s.p50)),
        ("p95", Json::U64(s.p95)),
        ("p99", Json::U64(s.p99)),
        ("max", Json::U64(s.max)),
    ])
}

/// Builds the `cluster` report: every fleet scenario with its makespan,
/// fleet and per-class latency percentiles, merged residency counters,
/// migration traffic, and per-device slices. The headline `total_cycles`
/// is the summed makespan of all scenarios, so the 5% gate trips on a
/// regression in routing, residency charging, migration pricing, or
/// preemption scheduling.
pub fn cluster_json(cfg: &ClusterExperimentConfig, r: &ClusterExperimentReport) -> Json {
    let scenarios: Vec<Json> = r
        .scenarios
        .iter()
        .map(|s| {
            let rep = &s.report;
            let devices: Vec<Json> = rep
                .devices
                .iter()
                .map(|d| {
                    obj(vec![
                        ("device", Json::Str(d.device.clone())),
                        ("streams", Json::U64(d.report.streams as u64)),
                        ("makespan_cycles", Json::U64(d.report.makespan_cycles)),
                        ("busy_cycles", Json::U64(d.report.stats.cycles)),
                        ("batches", Json::U64(d.report.batches_dispatched)),
                        ("shed_streams", Json::U64(d.report.recovery.shed_streams)),
                    ])
                })
                .collect();
            obj(vec![
                ("name", Json::Str(s.name.to_string())),
                ("streams", Json::U64(rep.streams as u64)),
                ("makespan_cycles", Json::U64(rep.makespan_cycles)),
                ("delivery_latency", latency_summary_json(&rep.delivery)),
                ("bulk_latency", latency_summary_json(&rep.bulk_delivery)),
                ("deadline_latency", latency_summary_json(&rep.deadline_delivery)),
                (
                    "residency",
                    obj(vec![
                        ("hits", Json::U64(rep.residency.hits)),
                        ("misses", Json::U64(rep.residency.misses)),
                        ("evictions", Json::U64(rep.residency.evictions)),
                        ("copied_bytes", Json::U64(rep.residency.copied_bytes)),
                        ("hit_permille", Json::U64(rep.residency.hit_permille())),
                    ]),
                ),
                ("preemptions", Json::U64(rep.preemptions)),
                ("preempted_cycles", Json::U64(rep.preempted_cycles)),
                ("shed_streams", Json::U64(rep.shed_streams)),
                ("imbalance_permille", Json::U64(rep.imbalance_permille)),
                (
                    "router",
                    obj(vec![
                        ("migrations", Json::U64(rep.router.migrations)),
                        ("migration_bytes", Json::U64(rep.router.migration_bytes)),
                        ("migration_cycles", Json::U64(rep.router.migration_cycles)),
                        ("rerouted_streams", Json::U64(rep.router.rerouted_streams)),
                    ]),
                ),
                ("devices", Json::Arr(devices)),
            ])
        })
        .collect();
    let skew_static = r.scenario("skew_static").makespan_cycles;
    let skew_rebalanced = r.scenario("skew_rebalanced").makespan_cycles;
    obj(vec![
        ("schema_version", Json::U64(SCHEMA_VERSION)),
        ("experiment", Json::Str("cluster".to_string())),
        (
            "config",
            obj(vec![
                ("vnodes", Json::U64(cfg.vnodes as u64)),
                ("n_machines", Json::U64(cfg.n_machines as u64)),
                ("residency_bytes", Json::U64(cfg.residency_bytes as u64)),
            ]),
        ),
        ("total_cycles", Json::U64(r.total_makespan())),
        (
            "summary",
            obj(vec![
                (
                    "rebalance_makespan_saved_permille",
                    Json::U64(
                        (skew_static.saturating_sub(skew_rebalanced) * 1000)
                            .checked_div(skew_static)
                            .unwrap_or(0),
                    ),
                ),
                ("deadline_p99_fifo", Json::U64(r.scenario("priority_fifo").deadline_delivery.p99)),
                (
                    "deadline_p99_preempt",
                    Json::U64(r.scenario("priority_preempt").deadline_delivery.p99),
                ),
                (
                    "residency_hit_permille",
                    Json::U64(r.scenario("skew_static").residency.hit_permille()),
                ),
            ]),
        ),
        ("scenarios", Json::Arr(scenarios)),
    ])
}

/// Builds the `failover` report: what crash-consistent serving costs.
/// `total_cycles` sums every scenario's fleet makespan, so the 5% gate
/// trips when checkpointing, migration pricing, or orphan replay gets more
/// expensive; the summary carries the recovery-overhead permille and the
/// replayed-cycle counters.
pub fn failover_json(cfg: &FailoverExperimentConfig, r: &FailoverExperimentReport) -> Json {
    let scenarios: Vec<Json> = r
        .scenarios
        .iter()
        .map(|s| {
            let rep = &s.report;
            obj(vec![
                ("name", Json::Str(s.name.to_string())),
                ("streams", Json::U64(rep.streams as u64)),
                ("makespan_cycles", Json::U64(rep.makespan_cycles)),
                ("delivery_latency", latency_summary_json(&rep.delivery)),
                ("lost_streams", Json::U64(rep.lost_streams)),
                ("doomed_streams", Json::U64(rep.router.doomed_streams)),
                ("rerouted_streams", Json::U64(rep.router.rerouted_streams)),
                (
                    "failover",
                    obj(vec![
                        ("checkpoints_taken", Json::U64(rep.failover.checkpoints_taken)),
                        ("checkpoint_bytes", Json::U64(rep.failover.checkpoint_bytes)),
                        ("migrations_replayed", Json::U64(rep.failover.migrations_replayed)),
                        ("migration_retries", Json::U64(rep.failover.migration_retries)),
                        ("replay_cycles", Json::U64(rep.failover.replay_cycles)),
                    ]),
                ),
            ])
        })
        .collect();
    let mid = r.scenario("failover_mid");
    let faulty = r.scenario("failover_faulty");
    obj(vec![
        ("schema_version", Json::U64(SCHEMA_VERSION)),
        ("experiment", Json::Str("failover".to_string())),
        (
            "config",
            obj(vec![
                ("vnodes", Json::U64(cfg.vnodes as u64)),
                ("n_machines", Json::U64(cfg.n_machines as u64)),
                ("streams", Json::U64(cfg.streams as u64)),
                ("checkpoint_every_batches", Json::U64(cfg.checkpoint_every_batches as u64)),
                ("residency_bytes", Json::U64(cfg.residency_bytes as u64)),
            ]),
        ),
        ("total_cycles", Json::U64(r.total_makespan())),
        (
            "summary",
            obj(vec![
                ("recovery_overhead_permille", Json::U64(r.recovery_overhead_permille())),
                ("replay_cycles", Json::U64(mid.failover.replay_cycles)),
                ("checkpoints_taken", Json::U64(mid.failover.checkpoints_taken)),
                ("checkpoint_bytes", Json::U64(mid.failover.checkpoint_bytes)),
                ("migrations_replayed", Json::U64(mid.failover.migrations_replayed)),
                ("faulty_migration_retries", Json::U64(faulty.failover.migration_retries)),
                ("lost_streams", Json::U64(mid.lost_streams.max(faulty.lost_streams))),
            ]),
        ),
        ("scenarios", Json::Arr(scenarios)),
    ])
}

/// Builds the `hostperf` report: host wall-clock throughput of the
/// streaming serve engine over a million-stream synthetic workload, plus
/// the deterministic simulation outputs and the peak-RSS bounded-memory
/// evidence, and the fleet row — the same source routed across the
/// heterogeneous cluster ([`crate::fleet_throughput_exp`]). Unlike every
/// other report this one carries wall-clock fields, so it is a warn-only
/// CI artifact, never a gated baseline — which is also why it has no
/// headline `total_cycles`.
pub fn hostperf_json(cfg: &HostPerfConfig, r: &HostPerfReport, fleet: &FleetPerfReport) -> Json {
    let fleet_json = obj(vec![
        ("streams", Json::U64(fleet.streams)),
        ("total_bytes", Json::U64(fleet.total_bytes)),
        ("makespan_cycles", Json::U64(fleet.makespan_cycles)),
        (
            "device_streams",
            Json::Obj(
                fleet
                    .device_streams
                    .iter()
                    .map(|(name, n)| (name.clone(), Json::U64(*n)))
                    .collect(),
            ),
        ),
        ("residency_hit_permille", Json::U64(fleet.residency_hit_permille)),
        ("imbalance_permille", Json::U64(fleet.imbalance_permille)),
        ("delivery_latency", latency_summary_json(&fleet.delivery)),
        ("wall_ms", Json::U64(fleet.wall_ms)),
        ("streams_per_sec", Json::F64(fleet.streams_per_sec)),
        ("peak_rss_kb", Json::U64(fleet.peak_rss_kb.unwrap_or(0))),
    ]);
    obj(vec![
        ("schema_version", Json::U64(SCHEMA_VERSION)),
        ("experiment", Json::Str("hostperf".to_string())),
        (
            "config",
            obj(vec![
                ("streams", Json::U64(cfg.streams as u64)),
                ("seed", Json::U64(cfg.seed)),
                ("mean_gap", Json::U64(cfg.mean_gap)),
                ("len_min", Json::U64(cfg.len_range.start as u64)),
                ("len_max", Json::U64(cfg.len_range.end as u64)),
                ("device", Json::Str(cfg.device.name.to_string())),
            ]),
        ),
        ("streams", Json::U64(r.streams)),
        ("total_bytes", Json::U64(r.total_bytes)),
        ("makespan_cycles", Json::U64(r.makespan_cycles)),
        ("busy_cycles", Json::U64(r.busy_cycles)),
        ("batches", Json::U64(r.batches)),
        (
            "delivery_latency",
            obj(vec![
                ("p50", Json::U64(r.delivery.p50)),
                ("p95", Json::U64(r.delivery.p95)),
                ("p99", Json::U64(r.delivery.p99)),
                ("max", Json::U64(r.delivery.max)),
                ("error_permille", Json::U64(r.latency_error_permille)),
            ]),
        ),
        ("peak_queue_depth", Json::U64(r.peak_queue)),
        ("wall_ms", Json::U64(r.wall_ms)),
        ("streams_per_sec", Json::F64(r.streams_per_sec)),
        ("mbytes_per_sec", Json::F64(r.mbytes_per_sec)),
        ("peak_rss_kb", Json::U64(r.peak_rss_kb.unwrap_or(0))),
        ("fleet", fleet_json),
    ])
}

/// Scales a report's headline `total_cycles` by `(100 + percent) / 100`
/// (rounding up). This is the self-test hook for the CI gate: inflating a
/// fresh report by more than [`GATE_TOLERANCE_PERCENT`] must make
/// [`regression_check`] against the committed baseline fail. Only the
/// headline total is touched, so an inflated report is detectably
/// inconsistent with its own phase data — it exists to prove the gate
/// trips, not to fake measurements.
pub fn inflate_total(doc: &mut Json, percent: u64) {
    if let Json::Obj(fields) = doc {
        for (key, value) in fields {
            if key == "total_cycles" {
                if let Json::U64(n) = value {
                    *n = (*n * (100 + percent)).div_ceil(100);
                }
                return;
            }
        }
    }
    panic!("report has no total_cycles field");
}

/// Extracts the headline `total_cycles` from a rendered report by scanning
/// for its first occurrence (the builders emit it in the header, before any
/// nested run objects).
pub fn extract_total_cycles(json_text: &str) -> Option<u64> {
    let key = "\"total_cycles\":";
    let at = json_text.find(key)?;
    let rest = json_text[at + key.len()..].trim_start();
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// The CI perf gate: passes when `current` is within
/// `tolerance_percent` above `baseline` (faster is always fine).
pub fn regression_check(current: u64, baseline: u64, tolerance_percent: u64) -> bool {
    current * 100 <= baseline * (100 + tolerance_percent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gspecpal_gpu::Phase;

    fn profile(cycles: u64) -> PhaseProfile {
        let mut p = PhaseProfile::default();
        p.get_mut(Phase::SpecExec).cycles = cycles;
        p.get_mut(Phase::SpecExec).rounds = 1;
        p
    }

    #[test]
    fn rendering_is_stable_and_escaped() {
        let doc = obj(vec![
            ("name", Json::Str("a\"b\nc".into())),
            ("n", Json::U64(7)),
            ("x", Json::F64(0.5)),
            ("bad", Json::F64(f64::NAN)),
            ("list", Json::Arr(vec![Json::U64(1), Json::U64(2)])),
        ]);
        let a = doc.render();
        let b = doc.render();
        assert_eq!(a, b);
        assert!(a.contains("\"a\\\"b\\nc\""));
        assert!(a.contains("\"bad\": null"));
        assert!(a.ends_with("}\n"));
    }

    #[test]
    fn totals_round_trip_through_text() {
        let doc = obj(vec![
            ("schema_version", Json::U64(SCHEMA_VERSION)),
            ("total_cycles", Json::U64(123456)),
            ("nested", obj(vec![("total_cycles", Json::U64(1))])),
        ]);
        assert_eq!(extract_total_cycles(&doc.render()), Some(123456));
        assert_eq!(extract_total_cycles("no totals here"), None);
    }

    #[test]
    fn inflation_trips_the_gate() {
        let mut doc = obj(vec![("total_cycles", Json::U64(1000))]);
        inflate_total(&mut doc, 10);
        let inflated = extract_total_cycles(&doc.render()).unwrap();
        assert_eq!(inflated, 1100);
        assert!(regression_check(1000, 1000, GATE_TOLERANCE_PERCENT));
        assert!(regression_check(1049, 1000, GATE_TOLERANCE_PERCENT));
        assert!(!regression_check(inflated, 1000, GATE_TOLERANCE_PERCENT));
        assert!(regression_check(900, 1000, GATE_TOLERANCE_PERCENT), "faster never fails");
    }

    #[test]
    fn run_objects_carry_every_phase() {
        let text = run_json(42, &profile(42)).render();
        for phase in Phase::ALL {
            assert!(text.contains(&format!("\"{}\"", phase.name())), "{text}");
        }
        assert!(text.contains("\"utilization\""));
        assert_eq!(extract_total_cycles(&text), Some(42));
    }
}
