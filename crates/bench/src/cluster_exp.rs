//! The `cluster` experiment: fleet serving with residency, rebalancing,
//! and priority preemption — the numbers behind `BENCH_cluster.json`.
//!
//! Four paired scenarios on deterministic traces:
//!
//! * `skew_static` vs `skew_rebalanced` — the same skewed trace (two hot
//!   machines that the consistent-hash ring co-locates on one device) with
//!   rebalancing off and on. The rebalanced fleet must finish earlier even
//!   after paying for the table migrations, which is the claim the bench
//!   test pins.
//! * `priority_fifo` vs `priority_preempt` — the same bulk-plus-deadline
//!   trace with wave-boundary preemption off and on. Preemption must cut
//!   the deadline class's p99 while bulk throughput (fleet makespan) stays
//!   within a bounded factor.
//!
//! Plus `hetero_fleet` — uniform traffic over the heterogeneous
//! A100/RTX 3090/T4 fleet, exercising the small-device preset and the
//! imbalance metric under mixed capability.
//!
//! Residency modeling is on everywhere (with a budget tight enough to
//! force evictions), so the report's merged hit rate is meaningful. The
//! headline `total_cycles` is the summed makespan of every scenario: the
//! 5% CI gate trips when routing, migration pricing, residency, or
//! preemption gets more expensive.

use gspecpal_cluster::{
    run_cluster, ClusterConfig, ClusterDevice, ClusterReport, FleetMachine, HashRing,
    RebalanceConfig,
};
use gspecpal_fsm::examples::mod_counter;
use gspecpal_fsm::Dfa;
use gspecpal_serve::{
    BatchPolicy, PriorityClass, ResidencyConfig, ServeConfig, StreamArrival, Trace,
};

/// Workload shape for [`run_cluster_exp`].
#[derive(Clone, Debug)]
pub struct ClusterExperimentConfig {
    /// Ring points per device.
    pub vnodes: usize,
    /// Machines (FSMs) on the fleet; hot pairs are chosen among them by
    /// where the ring actually places them.
    pub n_machines: usize,
    /// Device global-memory budget for resident tables, per device.
    pub residency_bytes: usize,
}

impl Default for ClusterExperimentConfig {
    fn default() -> Self {
        ClusterExperimentConfig { vnodes: 32, n_machines: 8, residency_bytes: 24 * 1024 }
    }
}

/// One named scenario's full fleet report.
#[derive(Clone, Debug)]
pub struct ClusterScenario {
    /// Scenario name (`skew_static`, `skew_rebalanced`, `priority_fifo`,
    /// `priority_preempt`, `hetero_fleet`).
    pub name: &'static str,
    /// The fleet report the scenario produced.
    pub report: ClusterReport,
}

/// Result of [`run_cluster_exp`]: every scenario, in a fixed order.
#[derive(Clone, Debug)]
pub struct ClusterExperimentReport {
    /// The scenarios, in the order listed on [`ClusterScenario::name`].
    pub scenarios: Vec<ClusterScenario>,
}

impl ClusterExperimentReport {
    /// The named scenario's report. Panics on an unknown name — scenario
    /// names are part of this module's API.
    pub fn scenario(&self, name: &str) -> &ClusterReport {
        &self.scenarios.iter().find(|s| s.name == name).expect("known scenario name").report
    }

    /// Headline for the CI gate: every scenario's makespan, summed.
    pub fn total_makespan(&self) -> u64 {
        self.scenarios.iter().map(|s| s.report.makespan_cycles).sum()
    }
}

/// The first two machine ids the ring places on the same device — the
/// "unlucky collision" both skew scenarios are built around.
fn co_located_pair(ring: &HashRing, n_machines: usize) -> (usize, usize) {
    for a in 0..n_machines {
        for b in a + 1..n_machines {
            if ring.route(a) == ring.route(b) {
                return (a, b);
            }
        }
    }
    panic!("no co-located machine pair among {n_machines} machines — add machines or vnodes");
}

/// A distinct small DFA per machine id (5–12 states), so tables differ in
/// footprint and the residency LRU has real decisions to make.
fn fleet_dfas(n: usize) -> Vec<Dfa> {
    (0..n).map(|m| mod_counter(5 + (m as u32 % 8), &[0])).collect()
}

fn machines_with_deadline(dfas: &[Dfa], deadline: Option<usize>) -> Vec<FleetMachine<'_>> {
    dfas.iter()
        .enumerate()
        .map(|(m, dfa)| FleetMachine {
            dfa,
            training: b"0110",
            class: if Some(m) == deadline { PriorityClass::Deadline } else { PriorityClass::Bulk },
        })
        .collect()
}

/// The skewed trace: before the epoch both hot machines warm up with
/// moderate traffic (the evidence the rebalancer reads); after it they are
/// hammered with large payloads. Cold machines tick along throughout so
/// every device does *some* work.
fn skew_trace(hot: (usize, usize), n_machines: usize, epoch: u64) -> Trace {
    let mut arrivals = Vec::new();
    for i in 0..24u64 {
        for &m in &[hot.0, hot.1] {
            arrivals.push(StreamArrival {
                arrival_cycle: i * (epoch / 24),
                machine: m,
                bytes: b"01".repeat(128),
            });
        }
    }
    for i in 0..60u64 {
        for &m in &[hot.0, hot.1] {
            arrivals.push(StreamArrival {
                arrival_cycle: epoch + i * 400,
                machine: m,
                bytes: b"0110".repeat(256),
            });
        }
    }
    for m in 0..n_machines {
        if m == hot.0 || m == hot.1 {
            continue;
        }
        for i in 0..6u64 {
            arrivals.push(StreamArrival {
                arrival_cycle: i * (epoch / 3),
                machine: m,
                bytes: b"10".repeat(32),
            });
        }
    }
    Trace::from_arrivals(arrivals)
}

/// The priority trace: periodic eight-stream bulk bursts (filling a FIFO
/// batch that runs as one long kernel) with a single deadline stream
/// arriving mid-kernel each period.
fn priority_trace(bulk_m: usize, deadline_m: usize) -> Trace {
    const PERIOD: u64 = 50_000;
    let mut arrivals = Vec::new();
    for burst in 0..24u64 {
        let t0 = burst * PERIOD;
        for _ in 0..8 {
            arrivals.push(StreamArrival {
                arrival_cycle: t0,
                machine: bulk_m,
                bytes: b"011010".repeat(100),
            });
        }
        arrivals.push(StreamArrival {
            arrival_cycle: t0 + 20_000,
            machine: deadline_m,
            bytes: b"01".repeat(32),
        });
    }
    Trace::from_arrivals(arrivals)
}

/// Uniform traffic for the heterogeneous fleet: every machine gets the
/// same stream count, so the imbalance metric reflects device capability
/// and placement, not trace skew.
fn uniform_trace(n_machines: usize) -> Trace {
    Trace::synthetic(11, 96, n_machines, 40, 32..160, b"01")
}

fn serve_cfg(residency_bytes: usize, preempt: bool) -> ServeConfig {
    ServeConfig {
        policy: BatchPolicy::Fifo { batch: 8 },
        residency: Some(ResidencyConfig { capacity_bytes: residency_bytes }),
        preempt,
        ..ServeConfig::default()
    }
}

/// Runs all five scenarios. Deterministic in `cfg` alone: traces are
/// engineered against the ring the config produces, so the skew scenarios
/// always have their collision and the priority scenarios always have a
/// deadline stream arriving under an open bulk kernel.
pub fn run_cluster_exp(cfg: &ClusterExperimentConfig) -> ClusterExperimentReport {
    let dfas = fleet_dfas(cfg.n_machines);
    let mut scenarios = Vec::new();

    // -- Skew pair: three equal workstation devices, two hot machines the
    // ring co-locates. Homogeneous on purpose: the rebalancing win must
    // come from splitting the hot pair, not from landing on a faster card.
    let skew_devices = vec![
        ClusterDevice::rtx3090_pcie(),
        ClusterDevice::rtx3090_pcie(),
        ClusterDevice::rtx3090_pcie(),
    ];
    let ring = HashRing::new(skew_devices.len(), cfg.vnodes);
    let hot = co_located_pair(&ring, cfg.n_machines);
    const EPOCH: u64 = 48_000;
    let machines = machines_with_deadline(&dfas, None);
    let trace = skew_trace(hot, cfg.n_machines, EPOCH);
    let base = ClusterConfig {
        vnodes: cfg.vnodes,
        serve: serve_cfg(cfg.residency_bytes, false),
        rebalance: None,
        outage: None,
        failover: None,
    };
    scenarios.push(ClusterScenario {
        name: "skew_static",
        report: run_cluster(&skew_devices, &machines, &trace, &base)
            .expect("skew trace is servable"),
    });
    let rebalanced =
        ClusterConfig { rebalance: Some(RebalanceConfig { epoch_cycles: EPOCH }), ..base.clone() };
    scenarios.push(ClusterScenario {
        name: "skew_rebalanced",
        report: run_cluster(&skew_devices, &machines, &trace, &rebalanced)
            .expect("skew trace is servable"),
    });

    // -- Priority pair: the deadline machine shares a device with the bulk
    // machine (again by ring construction), so its batches land exactly
    // where the long bulk kernels run.
    let prio_devices = vec![ClusterDevice::test_unit(), ClusterDevice::test_unit()];
    let prio_ring = HashRing::new(prio_devices.len(), cfg.vnodes);
    let (bulk_m, deadline_m) = co_located_pair(&prio_ring, cfg.n_machines);
    let prio_machines = machines_with_deadline(&dfas, Some(deadline_m));
    let prio_trace = priority_trace(bulk_m, deadline_m);
    let fifo = ClusterConfig {
        vnodes: cfg.vnodes,
        serve: serve_cfg(cfg.residency_bytes, false),
        rebalance: None,
        outage: None,
        failover: None,
    };
    scenarios.push(ClusterScenario {
        name: "priority_fifo",
        report: run_cluster(&prio_devices, &prio_machines, &prio_trace, &fifo)
            .expect("priority trace is servable"),
    });
    let preempt = ClusterConfig { serve: serve_cfg(cfg.residency_bytes, true), ..fifo.clone() };
    scenarios.push(ClusterScenario {
        name: "priority_preempt",
        report: run_cluster(&prio_devices, &prio_machines, &prio_trace, &preempt)
            .expect("priority trace is servable"),
    });

    // -- Heterogeneous fleet under uniform traffic: datacenter, workstation,
    // and small-inference devices sharing one router.
    let hetero_devices =
        vec![ClusterDevice::a100_nvlink(), ClusterDevice::rtx3090_pcie(), ClusterDevice::t4_pcie()];
    let hetero = ClusterConfig {
        vnodes: cfg.vnodes,
        serve: serve_cfg(cfg.residency_bytes, false),
        rebalance: None,
        outage: None,
        failover: None,
    };
    scenarios.push(ClusterScenario {
        name: "hetero_fleet",
        report: run_cluster(&hetero_devices, &machines, &uniform_trace(cfg.n_machines), &hetero)
            .expect("uniform trace is servable"),
    });

    ClusterExperimentReport { scenarios }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rebalancing_beats_static_sharding_on_the_skewed_trace() {
        let r = run_cluster_exp(&ClusterExperimentConfig::default());
        let stat = r.scenario("skew_static");
        let reb = r.scenario("skew_rebalanced");
        assert_eq!(stat.router.migrations, 0);
        assert!(reb.router.migrations > 0, "the skewed epoch must trigger migrations");
        assert!(reb.router.migration_bytes > 0);
        assert!(
            reb.makespan_cycles < stat.makespan_cycles,
            "rebalanced {} must beat static {}",
            reb.makespan_cycles,
            stat.makespan_cycles
        );
        assert!(reb.imbalance_permille < stat.imbalance_permille);
    }

    #[test]
    fn preemption_cuts_deadline_p99_without_starving_bulk() {
        let r = run_cluster_exp(&ClusterExperimentConfig::default());
        let fifo = r.scenario("priority_fifo");
        let pre = r.scenario("priority_preempt");
        assert_eq!(fifo.preemptions, 0);
        assert!(pre.preemptions > 0, "deadline batches must preempt the open bulk kernel");
        assert!(pre.preempted_cycles > 0);
        assert!(
            pre.deadline_delivery.p99 < fifo.deadline_delivery.p99,
            "preempt p99 {} must beat fifo p99 {}",
            pre.deadline_delivery.p99,
            fifo.deadline_delivery.p99
        );
        // Bulk pays a bounded price: fleet makespan within 25% of FIFO's.
        assert!(pre.makespan_cycles * 100 <= fifo.makespan_cycles * 125);
        assert_eq!(pre.shed_streams, 0, "preemption must not starve bulk into shedding");
    }

    #[test]
    fn residency_lru_sees_hits_and_is_reported() {
        let r = run_cluster_exp(&ClusterExperimentConfig::default());
        for s in &r.scenarios {
            let res = &s.report.residency;
            assert!(res.hits + res.misses > 0, "{}: residency never consulted", s.name);
            assert!(res.misses > 0, "{}: first touch of each table must miss", s.name);
            assert!(res.copied_bytes > 0, "{}", s.name);
        }
        // The skewed trace reuses two hot tables constantly: hits dominate.
        let hot = r.scenario("skew_static").residency;
        assert!(hot.hit_permille() > 500, "hot tables should mostly hit: {hot:?}");
    }

    #[test]
    fn the_experiment_is_deterministic() {
        let cfg = ClusterExperimentConfig::default();
        let a = run_cluster_exp(&cfg);
        let b = run_cluster_exp(&cfg);
        assert_eq!(a.total_makespan(), b.total_makespan());
        for (x, y) in a.scenarios.iter().zip(&b.scenarios) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.report, y.report);
        }
    }
}
