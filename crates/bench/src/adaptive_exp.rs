//! The `adaptive` experiment: online autotuning A/B — a tier-mixed trace
//! served under every static scheme versus the feedback controller.
//!
//! Four machines, one per behavioural [`Tier`], share one arrival trace.
//! No single static scheme wins every tier (that is the premise of §IV's
//! selector and of ROADMAP item 2): PM owns the spec-k-friendly segment,
//! SRE the slow-convergence one, aggressive recovery the rest. The static
//! legs pin one scheme across all four machines; the adaptive leg turns on
//! [`gspecpal_serve::AdaptiveController`], which starts from each
//! machine's offline pick and re-selects per batch from observed costs.
//! The paper-style headline is the adaptive makespan beating *every*
//! static scheme's, with the per-segment decision log exported for audit.

use gspecpal::SchemeKind;
use gspecpal_fsm::{Dfa, FrequencyProfile, TransformedDfa};
use gspecpal_gpu::PhaseProfile;
use gspecpal_serve::{
    serve, BatchPolicy, ControllerConfig, DecisionRecord, ServeConfig, ServeMachine, ServeReport,
    StreamArrival, Trace,
};
use gspecpal_workloads::{build_suite, Benchmark, Family, Tier};

use crate::experiments::ExperimentConfig;

/// Streams per tier segment: enough FIFO-4 batches (6 per machine) for the
/// controller to exploit, explore once, and re-commit.
const STREAMS_PER_SEGMENT: usize = 24;

/// The static schemes the adaptive controller is raced against — the four
/// selector candidates plus SFA.
pub const STATIC_SCHEMES: [SchemeKind; 5] =
    [SchemeKind::Pm, SchemeKind::Sre, SchemeKind::Rr, SchemeKind::Nf, SchemeKind::Sfa];

/// One serve leg of the A/B (a pinned static scheme, or the controller).
#[derive(Clone, Debug)]
pub struct AdaptiveRunSummary {
    /// `"adaptive"` or the pinned scheme's name.
    pub label: String,
    /// Wall-clock of the run in cycles.
    pub makespan_cycles: u64,
    /// Engine-busy cycles (copies + kernels).
    pub busy_cycles: u64,
    /// The run's merged phase breakdown.
    pub profile: PhaseProfile,
    /// Batches dispatched.
    pub batches: u64,
    /// Compute-span cycles per machine (tier segment), machine order.
    pub segment_cycles: Vec<u64>,
    /// Controller decisions made (0 on static legs).
    pub decisions_made: u64,
    /// Explore decisions among them.
    pub explore_decisions: u64,
}

/// One tier segment's A/B outcome plus the controller's decisions on it.
#[derive(Clone, Debug)]
pub struct SegmentSummary {
    /// Machine index (= segment index).
    pub machine: usize,
    /// Benchmark name (`Snort1`, …).
    pub fsm: String,
    /// Tier label.
    pub tier: &'static str,
    /// Compute cycles the adaptive leg spent on this segment.
    pub adaptive_cycles: u64,
    /// Compute cycles the best *overall* static leg spent on it.
    pub best_static_cycles: u64,
    /// The controller's decisions on this machine, dispatch order.
    pub decisions: Vec<DecisionRecord>,
}

/// The full adaptive A/B report.
#[derive(Clone, Debug)]
pub struct AdaptiveExperimentReport {
    /// Streams in the trace.
    pub streams: u64,
    /// Total input bytes served.
    pub total_bytes: u64,
    /// The static legs, in [`STATIC_SCHEMES`] order.
    pub static_runs: Vec<AdaptiveRunSummary>,
    /// The controller leg.
    pub adaptive: AdaptiveRunSummary,
    /// Per-tier-segment outcomes against the best overall static.
    pub segments: Vec<SegmentSummary>,
}

impl AdaptiveExperimentReport {
    /// The best (lowest-makespan) static leg.
    pub fn best_static(&self) -> &AdaptiveRunSummary {
        self.static_runs.iter().min_by_key(|r| r.makespan_cycles).expect("at least one static leg")
    }

    /// Whether the controller beat *every* static scheme's makespan — the
    /// tentpole acceptance criterion.
    pub fn adaptive_beats_every_static(&self) -> bool {
        self.static_runs.iter().all(|r| self.adaptive.makespan_cycles < r.makespan_cycles)
    }

    /// Headline: geometric-mean per-segment speedup of the adaptive leg
    /// over the best overall static leg (the scheme you would pick if you
    /// had to pin one).
    pub fn mean_speedup_adaptive_vs_best_static(&self) -> f64 {
        if self.segments.is_empty() {
            return 1.0;
        }
        let log_sum: f64 = self
            .segments
            .iter()
            .map(|s| (s.best_static_cycles.max(1) as f64 / s.adaptive_cycles.max(1) as f64).ln())
            .sum();
        (log_sum / self.segments.len() as f64).exp()
    }

    /// Gate headline: the adaptive makespan plus every static leg's, so
    /// the 5% CI gate trips on a regression in either side of the A/B.
    pub fn total_cycles(&self) -> u64 {
        self.adaptive.makespan_cycles
            + self.static_runs.iter().map(|r| r.makespan_cycles).sum::<u64>()
    }

    /// Paper-style text rendering.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Adaptive serving A/B ({} streams, {} bytes)\n",
            self.streams, self.total_bytes
        );
        for r in self.static_runs.iter().chain([&self.adaptive]) {
            out.push_str(&format!(
                "  {:<9} makespan={:>9}cy batches={:<3} decisions={} (explore {})\n",
                r.label, r.makespan_cycles, r.batches, r.decisions_made, r.explore_decisions
            ));
        }
        out.push_str(&format!(
            "  adaptive beats every static: {} | mean segment speedup vs best static ({}): {:.2}x\n",
            self.adaptive_beats_every_static(),
            self.best_static().label,
            self.mean_speedup_adaptive_vs_best_static(),
        ));
        for s in &self.segments {
            out.push_str(&format!(
                "    segment {} {:<10} [{}]: adaptive={}cy best-static={}cy\n",
                s.machine, s.fsm, s.tier, s.adaptive_cycles, s.best_static_cycles
            ));
        }
        out
    }
}

/// One benchmark per tier, families rotated so the segments differ in
/// state-count scale too.
fn pick_benchmarks(suite: &[Benchmark]) -> Vec<&Benchmark> {
    let want = [
        (Tier::SpecKFriendly, Family::Snort),
        (Tier::SlowConvergence, Family::ClamAV),
        (Tier::NonConvergent, Family::PowerEn),
        (Tier::InputSensitive, Family::Snort),
    ];
    want.iter()
        .map(|&(tier, family)| {
            suite
                .iter()
                .find(|b| b.tier == tier && b.family == family)
                .expect("suite covers every (tier, family) pair used here")
        })
        .collect()
}

/// Segment-major trace: machine 0's streams, then machine 1's, … — batches
/// close on machine changes, so this keeps FIFO batches tier-pure without
/// shrinking them. Arrivals burst in batch-sized groups.
fn build_trace(cfg: &ExperimentConfig, benches: &[&Benchmark]) -> Trace {
    // Streams long enough that speculative chunking amortizes its per-chunk
    // overhead (the regime §V targets); short streams would reward the
    // stream-parallel fallback on every machine and flatten the A/B.
    let mean_len = (cfg.input_len / 16).clamp(2 * 1024, 16 * 1024);
    let mut clock = 0u64;
    let mut arrivals = Vec::with_capacity(benches.len() * STREAMS_PER_SEGMENT);
    for (machine, b) in benches.iter().enumerate() {
        for j in 0..STREAMS_PER_SEGMENT {
            clock += if j % 4 == 0 { 2048 } else { (j as u64 * 7919) % 61 };
            let len = mean_len / 2 + (j.wrapping_mul(2_654_435_761)) % mean_len.max(1);
            let bytes = b.generate_input(len, j as u64);
            arrivals.push(StreamArrival { arrival_cycle: clock, machine, bytes });
        }
    }
    Trace::from_arrivals(arrivals)
}

/// Compute-span cycles per machine, from the batch records.
fn segment_cycles(report: &ServeReport, n_machines: usize) -> Vec<u64> {
    let mut per = vec![0u64; n_machines];
    for b in &report.batches {
        per[b.machine] += b.compute.duration();
    }
    per
}

fn summarize(label: String, report: &ServeReport, n_machines: usize) -> AdaptiveRunSummary {
    AdaptiveRunSummary {
        label,
        makespan_cycles: report.makespan_cycles,
        busy_cycles: report.stats.cycles,
        profile: report.stats.profile.clone(),
        batches: report.batches.len() as u64,
        segment_cycles: segment_cycles(report, n_machines),
        decisions_made: report.decisions_made,
        explore_decisions: report.explore_decisions,
    }
}

/// Runs the adaptive A/B: the tier-mixed trace under every pinned static
/// scheme, then under the controller.
pub fn run_adaptive(cfg: &ExperimentConfig) -> AdaptiveExperimentReport {
    let suite = build_suite(cfg.seed);
    let benches = pick_benchmarks(&suite);
    let trace = build_trace(cfg, &benches);

    // Frequency-transform each machine on its own training slice, exactly
    // as the latency-sensitive framework would.
    let trainings: Vec<Vec<u8>> =
        benches.iter().map(|b| b.generate_input(8 * 1024, 1000)).collect();
    let transformed: Vec<TransformedDfa> = benches
        .iter()
        .zip(&trainings)
        .map(|(b, t)| TransformedDfa::from_profile(&b.dfa, &FrequencyProfile::collect(&b.dfa, t)))
        .collect();
    let dfas: Vec<&Dfa> = transformed.iter().map(TransformedDfa::dfa).collect();

    let base = ServeConfig {
        policy: BatchPolicy::Fifo { batch: 4 },
        scheme_config: cfg.scheme_config(),
        ..ServeConfig::default()
    };

    let static_runs: Vec<AdaptiveRunSummary> = STATIC_SCHEMES
        .iter()
        .map(|&scheme| {
            let machines: Vec<ServeMachine<'_>> =
                dfas.iter().map(|d| ServeMachine::with_scheme(&cfg.device, d, scheme)).collect();
            let report = serve(&cfg.device, &machines, &trace, &base).expect("servable trace");
            summarize(scheme.name().to_string(), &report, dfas.len())
        })
        .collect();

    let machines: Vec<ServeMachine<'_>> = dfas
        .iter()
        .zip(&trainings)
        .map(|(d, t)| ServeMachine::prepare(&cfg.device, d, t))
        .collect();
    let adaptive_cfg =
        ServeConfig { controller: Some(ControllerConfig::default()), ..base.clone() };
    let adaptive_report =
        serve(&cfg.device, &machines, &trace, &adaptive_cfg).expect("servable trace");
    let adaptive = summarize("adaptive".to_string(), &adaptive_report, dfas.len());

    let best_static =
        static_runs.iter().min_by_key(|r| r.makespan_cycles).expect("five static legs");
    let segments = benches
        .iter()
        .enumerate()
        .map(|(m, b)| SegmentSummary {
            machine: m,
            fsm: b.name(),
            tier: b.tier.name(),
            adaptive_cycles: adaptive.segment_cycles[m],
            best_static_cycles: best_static.segment_cycles[m],
            decisions: adaptive_report
                .decisions
                .iter()
                .filter(|d| d.machine == m)
                .cloned()
                .collect(),
        })
        .collect();

    AdaptiveExperimentReport {
        streams: trace.len() as u64,
        total_bytes: trace.total_bytes() as u64,
        static_runs,
        adaptive,
        segments,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> ExperimentConfig {
        ExperimentConfig { input_len: 16 * 1024, n_chunks: 64, ..Default::default() }
    }

    #[test]
    fn adaptive_beats_every_static_scheme() {
        let r = run_adaptive(&small_cfg());
        assert_eq!(r.static_runs.len(), STATIC_SCHEMES.len());
        for s in &r.static_runs {
            assert!(
                r.adaptive.makespan_cycles < s.makespan_cycles,
                "adaptive {} vs static {} {}",
                r.adaptive.makespan_cycles,
                s.label,
                s.makespan_cycles
            );
        }
        assert!(r.adaptive_beats_every_static());
        assert!(r.mean_speedup_adaptive_vs_best_static() > 1.0);
    }

    #[test]
    fn experiment_is_deterministic() {
        let cfg = small_cfg();
        let a = run_adaptive(&cfg);
        let b = run_adaptive(&cfg);
        assert_eq!(a.total_cycles(), b.total_cycles());
        assert_eq!(a.adaptive.segment_cycles, b.adaptive.segment_cycles);
        assert_eq!(
            a.segments.iter().map(|s| s.decisions.len()).collect::<Vec<_>>(),
            b.segments.iter().map(|s| s.decisions.len()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn decision_log_covers_every_adaptive_batch() {
        let r = run_adaptive(&small_cfg());
        assert_eq!(r.adaptive.decisions_made, r.adaptive.batches);
        let logged: usize = r.segments.iter().map(|s| s.decisions.len()).sum();
        assert_eq!(logged as u64, r.adaptive.decisions_made);
        // Every machine's first decision is its offline pick (arm 0).
        for s in &r.segments {
            assert_eq!(s.decisions.first().map(|d| d.arm), Some(0), "{}", s.fsm);
        }
    }

    #[test]
    fn render_mentions_the_headline() {
        let r = run_adaptive(&small_cfg());
        let text = r.render();
        assert!(text.contains("adaptive beats every static"));
        assert!(text.contains("segment 0"));
    }
}
