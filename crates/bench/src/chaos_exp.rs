//! The `chaos` experiment: recovery overhead of the fault-injection
//! subsystem at a realistic (~1%) fault rate.
//!
//! Every speculation scheme runs the same workload twice — once fault-free,
//! once under a seeded [`FaultPlan`] injecting transient block aborts,
//! verify-phase aborts, and speculative-state corruption — and the report
//! compares the two: the faulted run must return bit-identical answers, and
//! the extra cycles (retries, backoff waits, watchdog re-execs, degraded
//! sequential re-execs) are the price of surviving the faults. The perf
//! gate watches the summed faulted totals, so a change that makes recovery
//! more expensive (or accidentally re-runs work it should not) trips CI.

use gspecpal::run::SchemeKind;
use gspecpal::schemes::{run_scheme, Job};
use gspecpal::table::{DeviceTable, TableLayout};
use gspecpal::{FaultPlan, SchemeConfig};
use gspecpal_fsm::{FrequencyProfile, TransformedDfa};
use gspecpal_gpu::PhaseProfile;
use gspecpal_regex::{compile_set, CompileConfig};
use gspecpal_workloads::inputs;

use crate::experiments::ExperimentConfig;

/// Fault rate the experiment injects, in permille (10‰ = 1%).
pub const CHAOS_FAULT_PERMILLE: u32 = 10;

/// Independent fault plans each scheme runs under. A 1% rate over a single
/// small grid hits almost nothing; sweeping several seeded plans gives the
/// rate a real sample space while keeping every individual run at the
/// realistic rate.
pub const CHAOS_PLANS: u64 = 32;

/// One scheme's fault-free / faulted aggregate over the plan sweep.
#[derive(Clone, Debug)]
pub struct ChaosRunSummary {
    /// The scheme.
    pub scheme: SchemeKind,
    /// Total cycles of the fault-free run, times [`CHAOS_PLANS`] (so it is
    /// directly comparable to `faulted_cycles`).
    pub clean_cycles: u64,
    /// Summed total cycles of the faulted runs (≥ `clean_cycles` for
    /// abort-only plans; corruption can shift the verification path, so the
    /// experiment keeps corruption in the plan and reports the measured
    /// delta rather than asserting monotonicity).
    pub faulted_cycles: u64,
    /// Merged phase breakdown of the faulted runs (`Recovery` carries the
    /// fault handling on top of ordinary misspeculation re-execution).
    pub faulted_profile: PhaseProfile,
    /// Block launches retried after an injected abort.
    pub block_retries: u64,
    /// Blocks killed by the watchdog budget.
    pub watchdog_kills: u64,
    /// Blocks that exhausted their retry budget and degraded to a
    /// sequential re-exec.
    pub degraded_blocks: u64,
    /// Cycles attributable to fault handling (wasted attempts, backoff,
    /// degraded re-execs) — a subset of the `Recovery` phase.
    pub fault_cycles: u64,
    /// Recovery overhead in permille of the clean total:
    /// `(faulted - clean) * 1000 / clean` (saturating at zero when the
    /// faulted run is cheaper, which corruption permits).
    pub overhead_permille: u64,
}

/// The full chaos experiment: one fault-free/faulted pair per scheme.
#[derive(Clone, Debug)]
pub struct ChaosExperimentReport {
    /// Injected fault rate in permille.
    pub fault_permille: u32,
    /// Input bytes scanned per run.
    pub input_bytes: u64,
    /// All pairs, in [`SchemeKind::gspecpal_schemes`] order.
    pub runs: Vec<ChaosRunSummary>,
}

impl ChaosExperimentReport {
    /// Headline total the perf gate watches: the summed total cycles of
    /// every *faulted* run, so regressions in recovery cost are caught
    /// even when fault-free cost is unchanged.
    pub fn total_faulted_cycles(&self) -> u64 {
        self.runs.iter().map(|r| r.faulted_cycles).sum()
    }

    /// Summed fault-free totals, for the overhead headline.
    pub fn total_clean_cycles(&self) -> u64 {
        self.runs.iter().map(|r| r.clean_cycles).sum()
    }

    /// Paper-style text rendering.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Recovery overhead at {}‰ injected faults ({} bytes)\n",
            self.fault_permille, self.input_bytes
        );
        for r in &self.runs {
            out.push_str(&format!(
                "  {:<9} clean={:>9}cy faulted={:>9}cy overhead={:>4}‰ \
                 retries={} watchdog={} degraded={} fault_cycles={}\n",
                r.scheme.name(),
                r.clean_cycles,
                r.faulted_cycles,
                r.overhead_permille,
                r.block_retries,
                r.watchdog_kills,
                r.degraded_blocks,
                r.fault_cycles,
            ));
        }
        out
    }
}

/// Runs the chaos experiment: a rule-set machine over a seeded network
/// trace, every GSpecPal scheme fault-free and under [`CHAOS_PLANS`]
/// seeded [`FaultPlan::chaos`]`(…, 10)` plans, answers cross-checked bit
/// for bit against the fault-free run for every plan.
pub fn run_chaos(cfg: &ExperimentConfig) -> ChaosExperimentReport {
    let rules = ["attack[0-9]*", "GET /admin", "exploit"];
    let dfa = compile_set(&rules, CompileConfig::default()).expect("rules compile");
    let spice: Vec<Vec<u8>> = vec![b"attack7".to_vec(), b"exploit".to_vec()];
    let input = inputs::network_trace(cfg.seed, cfg.input_len, &spice);

    let training_len = (cfg.input_len / 16).clamp(512, input.len());
    let freq = FrequencyProfile::collect(&dfa, &input[..training_len]);
    let transformed = TransformedDfa::from_profile(&dfa, &freq);
    let hot =
        DeviceTable::hot_rows_for_device(transformed.dfa(), TableLayout::Transformed, &cfg.device);
    let table = DeviceTable::transformed(transformed.dfa(), hot);

    // Fault rolls are per block launch, so the 1% rate is only observable
    // on a grid with a realistic block count: floor the chunk count at 512
    // regardless of the (often tiny) perf-gate configuration.
    let n_chunks = cfg.n_chunks.max(512).min(input.len().max(1));
    let clean_config = SchemeConfig { n_chunks, ..cfg.scheme_config() };
    let clean_job = Job::new(&cfg.device, &table, &input, clean_config).expect("valid job");
    // Seeds are splitmix-spread so neighbouring plans share no fault rolls.
    let plans: Vec<FaultPlan> = (0..CHAOS_PLANS)
        .map(|s| {
            let seed = (cfg.seed ^ s).wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(s);
            FaultPlan::chaos(seed, CHAOS_FAULT_PERMILLE)
        })
        .collect();

    let runs = SchemeKind::gspecpal_schemes()
        .iter()
        .map(|&scheme| {
            let clean = run_scheme(scheme, &clean_job);
            let mut summary = ChaosRunSummary {
                scheme,
                clean_cycles: clean.total_cycles() * CHAOS_PLANS,
                faulted_cycles: 0,
                faulted_profile: PhaseProfile::default(),
                block_retries: 0,
                watchdog_kills: 0,
                degraded_blocks: 0,
                fault_cycles: 0,
                overhead_permille: 0,
            };
            for plan in &plans {
                let chaos_config = SchemeConfig { faults: Some(*plan), ..clean_config };
                let chaos_job =
                    Job::new(&cfg.device, &table, &input, chaos_config).expect("valid job");
                let faulted = run_scheme(scheme, &chaos_job);
                assert_eq!(
                    faulted.end_state, clean.end_state,
                    "{scheme:?}: faults must not change answers"
                );
                assert_eq!(faulted.chunk_ends, clean.chunk_ends, "{scheme:?}: chunk ends drifted");
                summary.faulted_cycles += faulted.total_cycles();
                summary.faulted_profile.merge_sequential(&faulted.phase_profile());
                summary.block_retries += faulted.fault_retries();
                summary.watchdog_kills += faulted.fault_watchdog_kills();
                summary.degraded_blocks += faulted.fault_degraded_blocks();
                summary.fault_cycles += faulted.fault_cycles();
            }
            summary.overhead_permille = summary.faulted_cycles.saturating_sub(summary.clean_cycles)
                * 1000
                / summary.clean_cycles.max(1);
            summary
        })
        .collect();

    ChaosExperimentReport {
        fault_permille: CHAOS_FAULT_PERMILLE,
        input_bytes: input.len() as u64,
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> ExperimentConfig {
        ExperimentConfig { input_len: 16 * 1024, n_chunks: 64, ..Default::default() }
    }

    #[test]
    fn chaos_experiment_is_deterministic_and_injects_faults() {
        let cfg = small_cfg();
        let a = run_chaos(&cfg);
        let b = run_chaos(&cfg);
        assert_eq!(a.total_faulted_cycles(), b.total_faulted_cycles());
        assert_eq!(a.runs.len(), 4);
        assert!(
            a.runs.iter().any(|r| r.block_retries + r.degraded_blocks > 0),
            "the plan sweep must hit at least one block"
        );
        assert!(
            a.total_faulted_cycles() > a.total_clean_cycles(),
            "surviving injected faults must cost something overall"
        );
        for r in &a.runs {
            assert_eq!(
                r.faulted_profile.total_cycles(),
                r.faulted_cycles,
                "{:?}: partition holds under faults",
                r.scheme
            );
        }
    }

    #[test]
    fn chaos_render_mentions_every_scheme() {
        let text = run_chaos(&small_cfg()).render();
        for scheme in SchemeKind::gspecpal_schemes() {
            assert!(text.contains(scheme.name()), "{text}");
        }
    }
}
