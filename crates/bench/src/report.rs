//! Small text-table rendering helpers for the harness output.

/// Renders a table with a header row, aligning columns on width.
pub fn render_table(header: &[String], rows: &[Vec<String>]) -> String {
    let n_cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(n_cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (i, c) in cells.iter().enumerate() {
            line.push_str(&format!(" {:<w$} |", c, w = widths[i]));
        }
        line.push('\n');
        line
    };
    out.push_str(&fmt_row(header, &widths));
    let mut sep = String::from("|");
    for w in &widths {
        sep.push_str(&format!("{:-<w$}|", "", w = w + 2));
    }
    sep.push('\n');
    out.push_str(&sep);
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a percentage with 1 decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}", x * 100.0)
}

/// Geometric mean of positive values (the conventional way to average
/// speedups).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let s: f64 = xs.iter().map(|x| x.max(1e-12).ln()).sum();
    (s / xs.len() as f64).exp()
}

/// Arithmetic mean.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["a".into(), "long".into()],
            &[vec!["xx".into(), "1".into()], vec!["y".into(), "22".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.len() == lines[0].len()), "{t}");
    }

    #[test]
    fn geomean_of_speedups() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn mean_basic() {
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }
}
