//! Perf-report dumper: runs the fig8, ablation, motivation, serve, chaos,
//! adaptive, cluster, and failover experiments on a small deterministic
//! workload and writes one schema-versioned `BENCH_<experiment>.json` per
//! experiment (see `gspecpal_bench::perf` for the schema). CI runs this on every push and gates on the headline
//! `total_cycles` against the committed baselines.
//!
//! ```text
//! cargo run --release -p gspecpal-bench --bin perfdump -- \
//!     [--input-kb N] [--seed S] [--chunks N] [--device rtx3090|a100] \
//!     [--out DIR] [--write-baseline] [--check DIR] [--inflate-percent P] \
//!     [--hostperf [STREAMS]]
//! ```
//!
//! - `--out DIR` (default `.`): where the reports are written.
//! - `--write-baseline`: write to `benches/baseline` instead of `--out`
//!   (run from the repo root to regenerate the committed baselines).
//! - `--check DIR`: after writing, compare each report's `total_cycles`
//!   against `DIR/BENCH_<experiment>.json`; exit non-zero if any experiment
//!   regressed by more than the gate tolerance or a baseline is missing.
//! - `--inflate-percent P`: inflate each report's headline total by `P`%
//!   before writing/checking — the CI self-test that proves the gate trips.
//! - `--hostperf [STREAMS]`: additionally run the host-throughput
//!   experiment (default one million streams through the streaming serve
//!   engine in bounded-memory mode) and write `BENCH_hostperf.json`. The
//!   report carries wall-clock numbers, so it is never part of `--check` —
//!   CI keeps it as a warn-only artifact.

use gspecpal_bench::perf::{
    ablation_json, adaptive_json, chaos_json, cluster_json, extract_total_cycles, failover_json,
    fig8_json, hostperf_json, inflate_total, motivation_json, regression_check, serve_json, Json,
    GATE_TOLERANCE_PERCENT,
};
use gspecpal_bench::{
    fleet_throughput_exp, run_ablation, run_adaptive, run_chaos, run_cluster_exp, run_failover_exp,
    run_fig8, run_motivation, run_serve, throughput_exp, ClusterExperimentConfig, ExperimentConfig,
    FailoverExperimentConfig, HostPerfConfig,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // The perf gate's default workload is deliberately small: large enough
    // that every scheme recovers and stitches (the phases CI watches), small
    // enough to run in seconds in release mode.
    let mut cfg = ExperimentConfig { input_len: 32 * 1024, n_chunks: 64, ..Default::default() };
    let mut out_dir = ".".to_string();
    let mut write_baseline = false;
    let mut check_dir: Option<String> = None;
    let mut inflate_percent = 0u64;
    let mut hostperf_streams: Option<usize> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--input-kb" => {
                i += 1;
                cfg.input_len = args[i].parse::<usize>().expect("--input-kb takes a number") * 1024;
            }
            "--seed" => {
                i += 1;
                cfg.seed = args[i].parse().expect("--seed takes a number");
            }
            "--chunks" => {
                i += 1;
                cfg.n_chunks = args[i].parse().expect("--chunks takes a number");
            }
            "--device" => {
                i += 1;
                cfg.device = match args[i].as_str() {
                    "rtx3090" => gspecpal_gpu::DeviceSpec::rtx3090(),
                    "a100" => gspecpal_gpu::DeviceSpec::a100(),
                    other => {
                        eprintln!("unknown device {other} (try rtx3090, a100)");
                        std::process::exit(2);
                    }
                };
            }
            "--out" => {
                i += 1;
                out_dir = args[i].clone();
            }
            "--write-baseline" => write_baseline = true,
            "--check" => {
                i += 1;
                check_dir = Some(args[i].clone());
            }
            "--inflate-percent" => {
                i += 1;
                inflate_percent = args[i].parse().expect("--inflate-percent takes a number");
            }
            "--hostperf" => {
                // Optional stream-count operand; defaults to a million.
                hostperf_streams = match args.get(i + 1).and_then(|a| a.parse().ok()) {
                    Some(n) => {
                        i += 1;
                        Some(n)
                    }
                    None => Some(1_000_000),
                };
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if write_baseline {
        out_dir = "benches/baseline".to_string();
    }

    eprintln!(
        "perfdump — device: {}, input: {} KiB, N = {}, seed = {}",
        cfg.device.name,
        cfg.input_len / 1024,
        cfg.n_chunks,
        cfg.seed
    );
    let t0 = std::time::Instant::now();
    let mut reports: Vec<(&'static str, Json)> = vec![
        ("fig8", fig8_json(&cfg, &run_fig8(&cfg))),
        ("ablation", ablation_json(&cfg, &run_ablation(&cfg))),
        ("motivation", motivation_json(&cfg, &run_motivation(&cfg))),
        ("serve", serve_json(&cfg, &run_serve(&cfg))),
        ("chaos", chaos_json(&cfg, &run_chaos(&cfg))),
        ("adaptive", adaptive_json(&cfg, &run_adaptive(&cfg))),
        {
            // The cluster experiment shapes its own fleet workload (skew and
            // priority traces engineered against the router's placement), so
            // it does not take the single-device ExperimentConfig.
            let ccfg = ClusterExperimentConfig::default();
            ("cluster", cluster_json(&ccfg, &run_cluster_exp(&ccfg)))
        },
        {
            // Likewise the failover experiment: it engineers its own outage
            // scenario (victim choice, crash cycle) against the fleet's
            // routing, independent of the single-device knobs.
            let fcfg = FailoverExperimentConfig::default();
            ("failover", failover_json(&fcfg, &run_failover_exp(&fcfg)))
        },
    ];
    if inflate_percent > 0 {
        eprintln!("[inflating headline totals by {inflate_percent}% — gate self-test]");
        for (_, doc) in &mut reports {
            inflate_total(doc, inflate_percent);
        }
    }

    std::fs::create_dir_all(&out_dir).expect("create output dir");
    let mut failed = false;
    for (name, doc) in &reports {
        let text = doc.render();
        let current = extract_total_cycles(&text).expect("report has a headline total");
        let path = format!("{out_dir}/BENCH_{name}.json");
        std::fs::write(&path, &text).expect("write report");
        println!("{name}: total_cycles = {current} [wrote {path}]");

        if let Some(dir) = &check_dir {
            let baseline_path = format!("{dir}/BENCH_{name}.json");
            let Ok(baseline_text) = std::fs::read_to_string(&baseline_path) else {
                println!("{name}: FAIL — no baseline at {baseline_path}");
                failed = true;
                continue;
            };
            let baseline = extract_total_cycles(&baseline_text)
                .unwrap_or_else(|| panic!("{baseline_path} has no total_cycles"));
            if regression_check(current, baseline, GATE_TOLERANCE_PERCENT) {
                println!(
                    "{name}: OK — {current} vs baseline {baseline} \
                     (tolerance {GATE_TOLERANCE_PERCENT}%)"
                );
            } else {
                println!(
                    "{name}: FAIL — {current} regressed more than \
                     {GATE_TOLERANCE_PERCENT}% over baseline {baseline}"
                );
                failed = true;
            }
        }
    }
    // The host-throughput experiment runs after the gated reports: it is
    // wall-clock (machine-dependent), so its report is written but never
    // checked against a baseline.
    if let Some(streams) = hostperf_streams {
        let hcfg = HostPerfConfig { streams, device: cfg.device.clone(), ..Default::default() };
        eprintln!("[hostperf: {streams} streams through the streaming serve engine]");
        let hreport = throughput_exp(&hcfg);
        eprintln!("[hostperf fleet row: {streams} streams across the heterogeneous cluster]");
        let freport = fleet_throughput_exp(&hcfg);
        let path = format!("{out_dir}/BENCH_hostperf.json");
        std::fs::write(&path, hostperf_json(&hcfg, &hreport, &freport).render())
            .expect("write report");
        println!(
            "hostperf: {:.0} streams/s, {:.1} MiB/s, peak RSS {} KiB, \
             makespan {} cycles [wrote {path}]",
            hreport.streams_per_sec,
            hreport.mbytes_per_sec,
            hreport.peak_rss_kb.unwrap_or(0),
            hreport.makespan_cycles,
        );
        println!(
            "hostperf fleet: {:.0} streams/s across {} devices, residency hits {}‰, \
             imbalance {}‰, makespan {} cycles",
            freport.streams_per_sec,
            freport.device_streams.len(),
            freport.residency_hit_permille,
            freport.imbalance_permille,
            freport.makespan_cycles,
        );
    }
    eprintln!("[perfdump finished in {:.1}s]", t0.elapsed().as_secs_f64());
    if failed {
        std::process::exit(1);
    }
}
