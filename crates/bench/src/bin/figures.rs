//! The paper-harness binary: regenerates every table and figure.
//!
//! ```text
//! cargo run --release -p gspecpal-bench --bin figures -- [EXPERIMENT] [--input-kb N] [--seed S] [--chunks N] [--csv DIR] [--device rtx3090|a100]
//! ```
//!
//! `EXPERIMENT` is one of `table2`, `table3`, `fig3`, `fig7`, `fig8`,
//! `fig9`, `ablation`, `selector`, or `all` (default).

use gspecpal_bench::{
    run_ablation, run_budget_ablation, run_cpu_scaling, run_device_sensitivity, run_fig3, run_fig7,
    run_fig8, run_fig9, run_model_validation, run_motivation, run_table2, run_table3,
    ExperimentConfig,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment = "all".to_string();
    let mut cfg = ExperimentConfig::default();
    let mut csv_dir: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--input-kb" => {
                i += 1;
                cfg.input_len = args[i].parse::<usize>().expect("--input-kb takes a number") * 1024;
            }
            "--seed" => {
                i += 1;
                cfg.seed = args[i].parse().expect("--seed takes a number");
            }
            "--chunks" => {
                i += 1;
                cfg.n_chunks = args[i].parse().expect("--chunks takes a number");
            }
            "--csv" => {
                i += 1;
                csv_dir = Some(args[i].clone());
            }
            "--device" => {
                i += 1;
                cfg.device = match args[i].as_str() {
                    "rtx3090" => gspecpal_gpu::DeviceSpec::rtx3090(),
                    "a100" => gspecpal_gpu::DeviceSpec::a100(),
                    other => {
                        eprintln!("unknown device {other} (try rtx3090, a100)");
                        std::process::exit(2);
                    }
                };
            }
            other if !other.starts_with("--") => experiment = other.to_string(),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    println!(
        "GSpecPal reproduction harness — device: {}, input: {} KiB, N = {}, seed = {}\n",
        cfg.device.name,
        cfg.input_len / 1024,
        cfg.n_chunks,
        cfg.seed
    );

    let t0 = std::time::Instant::now();
    let save = |name: &str, csv: String| {
        if let Some(dir) = &csv_dir {
            std::fs::create_dir_all(dir).expect("create csv dir");
            let path = format!("{dir}/{name}.csv");
            std::fs::write(&path, csv).expect("write csv");
            eprintln!("[wrote {path}]");
        }
    };
    match experiment.as_str() {
        "table2" => {
            let r = run_table2(&cfg);
            println!("{}", r.render());
            save("table2", r.to_csv());
        }
        "table3" => {
            let r = run_table3(&cfg);
            println!("{}", r.render());
            save("table3", r.to_csv());
        }
        "fig3" => {
            let r = run_fig3(&cfg);
            println!("{}", r.render());
            save("fig3", r.to_csv());
        }
        "fig7" => {
            let r = run_fig7(&cfg);
            println!("{}", r.render());
            save("fig7", r.to_csv());
        }
        "fig8" | "selector" => {
            let r = run_fig8(&cfg);
            println!("{}", r.render());
            save("fig8", r.to_csv());
            save("fig8_phases", r.phases_to_csv());
        }
        "fig9" => {
            let r = run_fig9(&cfg);
            println!("{}", r.render());
            save("fig9", r.to_csv());
        }
        "ablation" => {
            let r = run_ablation(&cfg);
            println!("{}", r.render());
            save("ablation", r.to_csv());
        }
        "motivation" => println!("{}", run_motivation(&cfg).render()),
        "cpu" => println!("{}", run_cpu_scaling(&cfg).render()),
        "sensitivity" => println!("{}", run_device_sensitivity(&cfg).render()),
        "model" => println!("{}", run_model_validation(&cfg).render()),
        "budget" => println!("{}", run_budget_ablation(&cfg).render()),
        name if name.starts_with("debug:") => {
            println!("{}", gspecpal_bench::experiments::debug_benchmark(&cfg, &name[6..]));
        }
        "all" => {
            let t2 = run_table2(&cfg);
            println!("{}", t2.render());
            save("table2", t2.to_csv());
            let f3 = run_fig3(&cfg);
            println!("{}", f3.render());
            save("fig3", f3.to_csv());
            let f7 = run_fig7(&cfg);
            println!("{}", f7.render());
            save("fig7", f7.to_csv());
            let f8 = run_fig8(&cfg);
            println!("{}", f8.render());
            save("fig8", f8.to_csv());
            save("fig8_phases", f8.phases_to_csv());
            let t3 = run_table3(&cfg);
            println!("{}", t3.render());
            save("table3", t3.to_csv());
            let f9 = run_fig9(&cfg);
            println!("{}", f9.render());
            save("fig9", f9.to_csv());
            let ab = run_ablation(&cfg);
            println!("{}", ab.render());
            save("ablation", ab.to_csv());
            println!("{}", run_motivation(&cfg).render());
            println!("{}", run_model_validation(&cfg).render());
            println!("{}", run_budget_ablation(&cfg).render());
        }
        other => {
            eprintln!(
                "unknown experiment '{other}' (try table2, table3, fig3, fig7, fig8, fig9, \
                 ablation, motivation, model, budget, cpu, sensitivity, selector, all)"
            );
            std::process::exit(2);
        }
    }
    eprintln!("[harness finished in {:.1}s]", t0.elapsed().as_secs_f64());
}
