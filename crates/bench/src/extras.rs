//! Experiments beyond the paper's figures: the §II-B motivation quantified
//! (throughput- vs. latency-oriented parallelism, NFA vs. DFA per-character
//! cost), validation of the §III-C analytical model against the simulator,
//! and an ablation of the speculative-recovery budget (the "higher-order
//! speculation" order).

use gspecpal::analysis::{sr_time, CostParams};
use gspecpal::nfa_engine::run_nfa_device;
use gspecpal::schemes::{exec_phase, run_scheme, Job};
use gspecpal::table::{DeviceTable, TableLayout};
use gspecpal::throughput::run_stream_parallel;
use gspecpal::SchemeKind;
use gspecpal_fsm::{FrequencyProfile, TransformedDfa};
use gspecpal_regex::thompson::ThompsonCompiler;
use gspecpal_regex::{compile_set, parse, CompileConfig};
use gspecpal_workloads::{build_suite, inputs, Tier};

use crate::experiments::ExperimentConfig;
use crate::report::{f2, mean, render_table};

// ---------------------------------------------------------------------------
// Motivation (§II-B): why latency-sensitive DFA parallelization at all?
// ---------------------------------------------------------------------------

/// Measurements behind the paper's two motivating contrasts.
#[derive(Clone, Debug)]
pub struct MotivationReport {
    /// Batch completion (= per-stream response) of stream-level parallelism.
    pub batch_cycles: u64,
    /// Per-stream response of chunk-level speculation (GSpecPal/NF).
    pub gspecpal_cycles: u64,
    /// Aggregate throughput of the stream-parallel batch (bytes/cycle).
    pub batch_throughput: f64,
    /// Single-stream throughput of the speculative run (bytes/cycle).
    pub gspecpal_throughput: f64,
    /// Device NFA engine cycles for one stream.
    pub nfa_cycles: u64,
    /// DFA sequential cycles for the same stream.
    pub dfa_seq_cycles: u64,
    /// DFA + GSpecPal cycles for the same stream.
    pub dfa_gspecpal_cycles: u64,
    /// Mean NFA active-set size per character.
    pub nfa_avg_active: f64,
    /// DFA state count for the rule set.
    pub dfa_states: u32,
    /// NFA state count for the rule set.
    pub nfa_states: u32,
}

/// Quantifies §II-B: stream-level parallelism wins aggregate throughput but
/// loses single-stream response time to chunk-level speculation; NFAs save
/// memory but pay |active set| lookups per character where the DFA pays one.
pub fn run_motivation(cfg: &ExperimentConfig) -> MotivationReport {
    let rules = ["attack[0-9]*", "GET /admin", "exploit", "root login", "over(flow|run)"];
    let dfa = compile_set(&rules, CompileConfig::default()).expect("rules compile");
    let asts: Vec<_> = rules.iter().map(|r| parse(r).expect("valid")).collect();
    let nfa = ThompsonCompiler::new().compile(&asts, true);

    let spice: Vec<Vec<u8>> = vec![b"attack7".to_vec(), b"exploit".to_vec()];
    let stream = inputs::network_trace(cfg.seed, cfg.input_len / 4, &spice);

    let training_len = (stream.len() / 100).max(512).min(stream.len());
    let freq = FrequencyProfile::collect(&dfa, &stream[..training_len]);
    let transformed = TransformedDfa::from_profile(&dfa, &freq);
    let hot =
        DeviceTable::hot_rows_for_device(transformed.dfa(), TableLayout::Transformed, &cfg.device);
    let table = DeviceTable::transformed(transformed.dfa(), hot);

    // Contrast 1: stream-level vs chunk-level parallelism, 256 streams.
    let copies: Vec<&[u8]> = (0..cfg.n_chunks.min(256)).map(|_| stream.as_slice()).collect();
    let batch = run_stream_parallel(&cfg.device, &table, &copies);
    let mut sc = cfg.scheme_config();
    sc.n_chunks = sc.n_chunks.min(stream.len());
    let job = Job::new(&cfg.device, &table, &stream, sc).expect("valid");
    let single = run_scheme(SchemeKind::Nf, &job);

    // Contrast 2: NFA device engine vs DFA for one stream's latency.
    let nfa_out = run_nfa_device(&cfg.device, &nfa, &stream, 32);
    let seq = run_scheme(SchemeKind::Sequential, &job);

    MotivationReport {
        batch_cycles: batch.response_cycles(),
        gspecpal_cycles: single.total_cycles(),
        batch_throughput: batch.bytes_per_cycle(),
        gspecpal_throughput: stream.len() as f64 / single.total_cycles() as f64,
        nfa_cycles: nfa_out.stats.cycles,
        dfa_seq_cycles: seq.total_cycles(),
        dfa_gspecpal_cycles: single.total_cycles(),
        nfa_avg_active: nfa_out.avg_active_states,
        dfa_states: dfa.n_states(),
        nfa_states: nfa.n_states(),
    }
}

impl MotivationReport {
    /// Paper-style text rendering.
    pub fn render(&self) -> String {
        format!(
            "Motivation (§II-B), quantified\n\
             stream-level parallelism (256 copies): batch done in {} cycles, \
             {:.3} B/cy aggregate — but per-stream response = {} cycles\n\
             chunk-level speculation (GSpecPal/NF): per-stream response = {} \
             cycles ({:.1}x faster response), {:.3} B/cy single-stream\n\
             NFA engine ({} states, avg {:.1} active): {} cycles/stream\n\
             DFA sequential ({} states): {} cycles; DFA + GSpecPal: {} cycles \
             ({:.1}x vs NFA)\n",
            self.batch_cycles,
            self.batch_throughput,
            self.batch_cycles,
            self.gspecpal_cycles,
            self.batch_cycles as f64 / self.gspecpal_cycles as f64,
            self.gspecpal_throughput,
            self.nfa_states,
            self.nfa_avg_active,
            self.nfa_cycles,
            self.dfa_states,
            self.dfa_seq_cycles,
            self.dfa_gspecpal_cycles,
            self.nfa_cycles as f64 / self.dfa_gspecpal_cycles as f64,
        )
    }
}

// ---------------------------------------------------------------------------
// §III-C model validation: Equations 2 and 3 vs. the simulator.
// ---------------------------------------------------------------------------

/// Per-benchmark comparison of the analytical model and the simulation.
#[derive(Clone, Debug)]
pub struct ModelValidationReport {
    /// `(name, PM model/sim ratio, SR model/sim ratio)`.
    pub rows: Vec<(String, f64, f64)>,
}

/// Fits the model's primitive costs from measured phases, evaluates
/// Equations 2/3, and compares against the simulated totals. The model is
/// coarse (it ignores coalescing, contention, and multi-chunk frontier
/// advances), so agreement within a small factor — and matching *ranking* —
/// is the expected outcome, mirroring the paper's use of the analysis as a
/// selector guide rather than a predictor.
pub fn run_model_validation(cfg: &ExperimentConfig) -> ModelValidationReport {
    let suite = build_suite(cfg.seed);
    let fw = cfg.framework();
    let mut rows = Vec::new();
    for b in suite.iter().filter(|b| b.tier != Tier::SlowConvergence).step_by(4) {
        let input = b.generate_input(cfg.input_len / 4, 0);
        let pm = fw.run_with(&b.dfa, &input, SchemeKind::Pm);
        let rr = fw.run_with(&b.dfa, &input, SchemeKind::Rr);

        // Fit primitives from the measured run.
        let training_len = (input.len() / 100).max(512).min(input.len());
        let freq = FrequencyProfile::collect(&b.dfa, &input[..training_len]);
        let transformed = TransformedDfa::from_profile(&b.dfa, &freq);
        let hot = DeviceTable::hot_rows_for_device(
            transformed.dfa(),
            TableLayout::Transformed,
            &cfg.device,
        );
        let table = DeviceTable::transformed(transformed.dfa(), hot);
        let mut sc = cfg.scheme_config();
        sc.n_chunks = sc.n_chunks.min(input.len());
        let job = Job::new(&cfg.device, &table, &input, sc).expect("valid");
        let t_p1 = exec_phase(&job, 1).exec_stats.cycles as f64;
        let t_pk = exec_phase(&job, sc.spec_k).exec_stats.cycles as f64;
        let n = sc.n_chunks;

        let params = CostParams {
            c: pm.predict.cycles as f64,
            t_p1,
            alpha_k: t_pk / t_p1,
            t_comm1: cfg.device.shuffle_latency as f64,
            t_ver1: 2.0 * cfg.device.shared_latency as f64,
            k: sc.spec_k,
        };
        // Per-chunk probabilities from the measured runtime accuracies. Note
        // that T_p1 — the wall time of the *parallel* execution phase — is
        // also the cost of re-executing one chunk (the phase is gated by its
        // slowest chunk), which is exactly how the paper's equations use it.
        let pm_p = vec![1.0 - pm.runtime_accuracy(); n.saturating_sub(1)];
        let rr_p = vec![1.0 - rr.runtime_accuracy(); n.saturating_sub(1)];
        // Equation 2, with the barrier cost of each sequential round added:
        let pm_model = params.c
            + t_pk
            + (n.max(2) as f64).log2().ceil() * (params.t_comm_k() + params.t_ver_k())
            + pm_p
                .iter()
                .map(|p| {
                    p * (params.t_comm1
                        + params.t_ver_k()
                        + params.t_p1
                        + cfg.device.barrier_latency as f64)
                })
                .sum::<f64>();
        // Equation 3: C + T_p1 plus the per-chunk verification stream with
        // the recovery probability (recovery rounds pay a barrier too).
        let sr_model =
            sr_time(&params, &rr_p) + rr_p.iter().sum::<f64>() * cfg.device.barrier_latency as f64;

        rows.push((
            b.name(),
            pm_model / pm.total_cycles() as f64,
            sr_model / rr.total_cycles() as f64,
        ));
    }
    ModelValidationReport { rows }
}

impl ModelValidationReport {
    /// Paper-style text rendering.
    pub fn render(&self) -> String {
        let header: Vec<String> = ["FSM", "Eq.2 model / sim (PM)", "Eq.3 model / sim (RR)"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let rows: Vec<Vec<String>> =
            self.rows.iter().map(|(n, a, b)| vec![n.clone(), f2(*a), f2(*b)]).collect();
        let pm_mean = mean(&self.rows.iter().map(|r| r.1).collect::<Vec<_>>());
        let sr_mean = mean(&self.rows.iter().map(|r| r.2).collect::<Vec<_>>());
        format!(
            "§III-C analytical model vs. simulation (ratios near 1 = good)\n{}\
             mean ratios: PM {} / RR {}\n",
            render_table(&header, &rows),
            f2(pm_mean),
            f2(sr_mean),
        )
    }
}

// ---------------------------------------------------------------------------
// Speculative-recovery budget ablation (higher-order speculation depth).
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// Multicore engines (the SRE lineage, on real threads).
// ---------------------------------------------------------------------------

/// Scaling measurements of the host-parallel engines.
#[derive(Clone, Debug)]
pub struct CpuScalingReport {
    /// Rows of `(benchmark, tier, threads, naive recoveries, sre recoveries,
    /// naive ms, sre ms)`.
    pub rows: CpuScalingRows,
}

/// Measured rows of the CPU scaling experiment.
pub type CpuScalingRows = Vec<(String, &'static str, usize, usize, usize, f64, f64)>;

/// Runs the crossbeam-based engines (Algorithm-2 naive speculation and SRE
/// with parallel recovery) at several thread counts on real cores. Wall
/// times are hardware-dependent; the interesting, stable columns are the
/// recovery counts — the same convergence story as the simulated kernels,
/// told by actual threads.
pub fn run_cpu_scaling(cfg: &ExperimentConfig) -> CpuScalingReport {
    use gspecpal::cpu::{run_speculative, run_speculative_sre};
    let suite = build_suite(cfg.seed);
    let convergent = suite.iter().find(|b| b.tier == Tier::SlowConvergence);
    let deep = suite.iter().find(|b| b.tier == Tier::NonConvergent);
    let mut rows = Vec::new();
    for b in [convergent, deep].into_iter().flatten() {
        let input = b.generate_input(cfg.input_len, 0);
        for threads in [1usize, 2, 4, 8] {
            let naive = run_speculative(&b.dfa, &input, threads);
            let sre = run_speculative_sre(&b.dfa, &input, threads);
            assert_eq!(naive.end_state, sre.end_state, "engines must agree");
            rows.push((
                b.name(),
                b.tier.name(),
                threads,
                naive.recoveries,
                sre.recoveries,
                naive.parallel_time.as_secs_f64() * 1e3,
                sre.parallel_time.as_secs_f64() * 1e3,
            ));
        }
    }
    CpuScalingReport { rows }
}

impl CpuScalingReport {
    /// Paper-style text rendering.
    pub fn render(&self) -> String {
        let header: Vec<String> =
            ["FSM", "tier", "threads", "naive recov.", "SRE recov.", "naive ms", "SRE ms"]
                .iter()
                .map(|s| s.to_string())
                .collect();
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|(n, t, th, nr, sr, nms, sms)| {
                vec![
                    n.clone(),
                    t.to_string(),
                    th.to_string(),
                    nr.to_string(),
                    sr.to_string(),
                    format!("{nms:.2}"),
                    format!("{sms:.2}"),
                ]
            })
            .collect();
        format!(
            "Multicore engines (crossbeam threads; SRE lineage [21])\n{}",
            render_table(&header, &rows)
        )
    }
}

// ---------------------------------------------------------------------------
// Cost-model sensitivity: do the paper's conclusions survive perturbing the
// simulator's constants?
// ---------------------------------------------------------------------------

/// Speedups re-measured under perturbed device parameters.
#[derive(Clone, Debug)]
pub struct SensitivityReport {
    /// Rows of `(parameter setting, NF speedup over PM on a deep FSM,
    /// SRE speedup over PM on a convergent FSM, PM speedup over NF on a
    /// spec-k FSM)`.
    pub rows: Vec<(String, f64, f64, f64)>,
}

/// Re-runs the three headline comparisons under halved/doubled values of the
/// simulator's cost constants (shared memory size, global latency, memory
/// bandwidth). A reproduction built on a cost model is only trustworthy if
/// its *conclusions* — who wins on which tier — are stable under such
/// perturbations; this experiment makes that checkable.
pub fn run_device_sensitivity(cfg: &ExperimentConfig) -> SensitivityReport {
    let suite = build_suite(cfg.seed);
    let deep = suite.iter().find(|b| b.tier == Tier::NonConvergent).expect("deep");
    let conv = suite.iter().find(|b| b.tier == Tier::SlowConvergence).expect("convergent");
    let speck = suite.iter().find(|b| b.tier == Tier::SpecKFriendly).expect("spec-k");
    let deep_in = deep.generate_input(cfg.input_len / 2, 0);
    let conv_in = conv.generate_input(cfg.input_len / 2, 0);
    let speck_in = speck.generate_input(cfg.input_len / 2, 0);

    let mut variants: Vec<(String, gspecpal_gpu::DeviceSpec)> = Vec::new();
    variants.push(("baseline".into(), cfg.device.clone()));
    let mut d = cfg.device.clone();
    d.shared_mem_bytes /= 2;
    variants.push(("shared/2".into(), d));
    let mut d = cfg.device.clone();
    d.shared_mem_bytes *= 2;
    variants.push(("sharedx2".into(), d));
    let mut d = cfg.device.clone();
    d.global_latency /= 2;
    variants.push(("global_lat/2".into(), d));
    let mut d = cfg.device.clone();
    d.global_latency *= 2;
    variants.push(("global_latx2".into(), d));
    let mut d = cfg.device.clone();
    d.bandwidth_millicycles_per_txn /= 2;
    variants.push(("bandwidthx2".into(), d));
    let mut d = cfg.device.clone();
    d.bandwidth_millicycles_per_txn *= 2;
    variants.push(("bandwidth/2".into(), d));

    let mut rows = Vec::new();
    for (name, device) in variants {
        let mut c = cfg.clone();
        c.device = device;
        let fw = c.framework();
        let ratio = |b: &gspecpal_workloads::Benchmark, input: &[u8], a, bk| {
            let x = fw.run_with(&b.dfa, input, a).total_cycles() as f64;
            let y = fw.run_with(&b.dfa, input, bk).total_cycles() as f64;
            x / y
        };
        rows.push((
            name,
            ratio(deep, &deep_in, SchemeKind::Pm, SchemeKind::Nf),
            ratio(conv, &conv_in, SchemeKind::Pm, SchemeKind::Sre),
            ratio(speck, &speck_in, SchemeKind::Nf, SchemeKind::Pm),
        ));
    }
    SensitivityReport { rows }
}

impl SensitivityReport {
    /// True when every perturbation preserves the three winners.
    pub fn conclusions_stable(&self) -> bool {
        self.rows.iter().all(|(_, nf, sre, pm)| *nf > 1.0 && *sre > 1.0 && *pm > 0.8)
    }

    /// Paper-style text rendering.
    pub fn render(&self) -> String {
        let header: Vec<String> = [
            "device variant",
            "NF speedup (deep FSM)",
            "SRE speedup (convergent FSM)",
            "PM speedup (spec-k FSM)",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let rows: Vec<Vec<String>> =
            self.rows.iter().map(|(n, a, b, c)| vec![n.clone(), f2(*a), f2(*b), f2(*c)]).collect();
        format!(
            "Cost-model sensitivity: tier winners under perturbed device              constants (all ratios > 1 = conclusions stable)\n{}stable: {}\n",
            render_table(&header, &rows),
            self.conclusions_stable(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig { seed: 1, input_len: 16 * 1024, n_chunks: 32, ..Default::default() }
    }

    #[test]
    fn motivation_shows_the_latency_gap() {
        let r = run_motivation(&tiny());
        // Chunk-level speculation must respond faster than a whole-stream
        // sequential scan (which is what a stream-parallel thread does).
        assert!(r.gspecpal_cycles < r.batch_cycles, "{r:?}");
        // Stream parallelism still wins on aggregate throughput.
        assert!(r.batch_throughput > r.gspecpal_throughput, "{r:?}");
        // NFAs are smaller but slower per character than the DFA pipeline.
        assert!(r.nfa_states < r.dfa_states * 10);
        assert!(r.nfa_cycles > r.dfa_gspecpal_cycles);
        assert!(!r.render().is_empty());
    }

    #[test]
    fn model_tracks_simulation_within_small_factor() {
        let r = run_model_validation(&tiny());
        assert!(!r.rows.is_empty());
        for (name, pm_ratio, sr_ratio) in &r.rows {
            assert!((0.2..5.0).contains(pm_ratio), "{name}: Eq.2 ratio {pm_ratio} out of range");
            assert!((0.2..5.0).contains(sr_ratio), "{name}: Eq.3 ratio {sr_ratio} out of range");
        }
    }

    #[test]
    fn sensitivity_conclusions_hold() {
        let r = run_device_sensitivity(&tiny());
        assert!(r.conclusions_stable(), "{:#?}", r.rows);
        assert_eq!(r.rows.len(), 7);
    }

    #[test]
    fn cpu_scaling_engines_agree() {
        let r = run_cpu_scaling(&tiny());
        assert!(!r.rows.is_empty());
        // Recovery counts are deterministic; wall times are not asserted.
        for (name, _, threads, _, _, _, _) in &r.rows {
            assert!(*threads >= 1, "{name}");
        }
    }

    #[test]
    fn budget_zero_cripples_convergent_fsms() {
        let r = run_budget_ablation(&tiny());
        let mut saw_convergent = false;
        for (name, tier, cells) in &r.rows {
            if *tier == "converge" {
                saw_convergent = true;
                let zero = cells.iter().find(|&&(b, _)| b == 0).unwrap().1;
                let one = cells.iter().find(|&&(b, _)| b == 1).unwrap().1;
                assert!(
                    zero > 2 * one,
                    "{name}: without the speculative wave SRE degenerates \
                     ({zero} vs {one})"
                );
            }
        }
        assert!(saw_convergent, "the sample must include a convergent FSM");
    }
}

/// Measured `(budget, cycles)` pairs for one benchmark.
pub type BudgetCells = Vec<(u32, u64)>;

/// Ablation over `spec_recovery_budget`.
#[derive(Clone, Debug)]
pub struct BudgetAblationReport {
    /// Rows of `(name, tier, per-budget SRE cycles)`.
    pub rows: Vec<(String, &'static str, BudgetCells)>,
    /// The budget values swept.
    pub budgets: Vec<u32>,
}

/// Sweeps the number of speculative recoveries each rear thread may run.
pub fn run_budget_ablation(cfg: &ExperimentConfig) -> BudgetAblationReport {
    let suite = build_suite(cfg.seed);
    let budgets = vec![0u32, 1, 2, 4];
    let mut rows = Vec::new();
    // One convergent and one deep benchmark per family tells the story.
    for b in suite
        .iter()
        .filter(|b| matches!(b.tier, Tier::SlowConvergence | Tier::NonConvergent))
        .step_by(2)
    {
        let input = b.generate_input(cfg.input_len / 4, 0);
        let fw = cfg.framework();
        let mut cells = Vec::new();
        for &budget in &budgets {
            let mut sc = cfg.scheme_config();
            sc.spec_recovery_budget = budget;
            let fwb = fw.clone().with_config(sc);
            let o = fwb.run_with(&b.dfa, &input, SchemeKind::Sre);
            cells.push((budget, o.total_cycles()));
        }
        rows.push((b.name(), b.tier.name(), cells));
    }
    BudgetAblationReport { rows, budgets }
}

impl BudgetAblationReport {
    /// Paper-style text rendering.
    pub fn render(&self) -> String {
        let mut header = vec!["FSM".to_string(), "tier".to_string()];
        header.extend(self.budgets.iter().map(|b| format!("budget={b}")));
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|(n, t, cells)| {
                let mut row = vec![n.clone(), t.to_string()];
                let best = cells.iter().map(|&(_, c)| c).min().unwrap_or(1) as f64;
                row.extend(cells.iter().map(|&(_, c)| f2(c as f64 / best)));
                row
            })
            .collect();
        format!(
            "Speculative-recovery budget ablation (SRE; normalized to each \
             FSM's best)\n{}",
            render_table(&header, &rows)
        )
    }
}
