//! Experiment harness: regenerates every table and figure of the paper.
//!
//! Each `run_*` function reproduces one experiment from §V and returns a
//! structured report; the `figures` binary prints them in the paper's
//! format. All experiments are deterministic in `(seed, input_len)`.

#![warn(missing_docs)]

pub mod adaptive_exp;
pub mod chaos_exp;
pub mod cluster_exp;
pub mod csv;
pub mod experiments;
pub mod extras;
pub mod failover_exp;
pub mod hostperf;
pub mod perf;
pub mod report;
pub mod serve_exp;

pub use adaptive_exp::{
    run_adaptive, AdaptiveExperimentReport, AdaptiveRunSummary, SegmentSummary,
};
pub use chaos_exp::{run_chaos, ChaosExperimentReport, ChaosRunSummary};
pub use cluster_exp::{
    run_cluster_exp, ClusterExperimentConfig, ClusterExperimentReport, ClusterScenario,
};
pub use experiments::{
    run_ablation, run_fig3, run_fig7, run_fig8, run_fig9, run_selector_eval, run_table2,
    run_table3, ExperimentConfig,
};
pub use extras::{
    run_budget_ablation, run_cpu_scaling, run_device_sensitivity, run_model_validation,
    run_motivation,
};
pub use failover_exp::{
    run_failover_exp, FailoverExperimentConfig, FailoverExperimentReport, FailoverScenario,
};
pub use hostperf::{
    fleet_throughput_exp, peak_rss_kb, throughput_exp, FleetPerfReport, HostPerfConfig,
    HostPerfReport,
};
pub use serve_exp::{run_serve, ServeExperimentReport, ServeRunSummary};
