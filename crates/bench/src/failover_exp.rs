//! The `failover` experiment: what crash-consistent serving costs — the
//! numbers behind `BENCH_failover.json`.
//!
//! Three runs of the same deterministic fleet workload:
//!
//! * `crash_free` — the healthy reference: no outage, no checkpoints.
//! * `failover_mid` — the busiest device is killed mid-trace with
//!   checkpoint failover on. The victim's durable prefix survives in its
//!   last checkpoint, orphans replay on the survivors, and
//!   `lost_streams` must be zero.
//! * `failover_faulty` — the same kill under an injected fault plan, so
//!   the checkpoint migration itself suffers copy failures and pays the
//!   capped-exponential retry schedule.
//!
//! The headline `total_cycles` is the summed fleet makespan of all three
//! scenarios: the 5% CI gate trips when checkpointing, migration pricing,
//! or orphan replay gets more expensive. The summary also exports
//! `recovery_overhead_permille` — how much the mid-trace kill stretched
//! the fleet makespan over the crash-free reference — and the replayed
//! cycle / checkpoint-traffic counters the ROADMAP cares about.

use gspecpal::{FaultPlan, SchemeConfig};
use gspecpal_cluster::{
    run_cluster, ClusterConfig, ClusterDevice, ClusterReport, DeviceOutage, FailoverConfig,
    FleetMachine,
};
use gspecpal_fsm::examples::mod_counter;
use gspecpal_fsm::Dfa;
use gspecpal_serve::{PriorityClass, ResidencyConfig, ServeConfig, Trace};

/// Workload shape for [`run_failover_exp`].
#[derive(Clone, Debug)]
pub struct FailoverExperimentConfig {
    /// Ring points per device.
    pub vnodes: usize,
    /// Machines (FSMs) on the fleet.
    pub n_machines: usize,
    /// Streams in the synthetic trace.
    pub streams: usize,
    /// Checkpoint cadence on the doomed device, in formed batches.
    pub checkpoint_every_batches: usize,
    /// Device global-memory budget for resident tables, per device.
    pub residency_bytes: usize,
}

impl Default for FailoverExperimentConfig {
    fn default() -> Self {
        FailoverExperimentConfig {
            vnodes: 32,
            n_machines: 8,
            streams: 72,
            checkpoint_every_batches: 3,
            residency_bytes: 24 * 1024,
        }
    }
}

/// One named scenario's full fleet report.
#[derive(Clone, Debug)]
pub struct FailoverScenario {
    /// Scenario name (`crash_free`, `failover_mid`, `failover_faulty`).
    pub name: &'static str,
    /// The fleet report the scenario produced.
    pub report: ClusterReport,
}

/// Result of [`run_failover_exp`]: every scenario, in a fixed order.
#[derive(Clone, Debug)]
pub struct FailoverExperimentReport {
    /// The scenarios, in the order listed on [`FailoverScenario::name`].
    pub scenarios: Vec<FailoverScenario>,
}

impl FailoverExperimentReport {
    /// The named scenario's report. Panics on an unknown name — scenario
    /// names are part of this module's API.
    pub fn scenario(&self, name: &str) -> &ClusterReport {
        &self.scenarios.iter().find(|s| s.name == name).expect("known scenario name").report
    }

    /// Headline for the CI gate: every scenario's makespan, summed.
    pub fn total_makespan(&self) -> u64 {
        self.scenarios.iter().map(|s| s.report.makespan_cycles).sum()
    }

    /// How much the mid-trace kill stretched the fleet makespan over the
    /// crash-free reference, in permille of the reference (0 when the
    /// recovered fleet somehow finished no later).
    pub fn recovery_overhead_permille(&self) -> u64 {
        let healthy = self.scenario("crash_free").makespan_cycles;
        let recovered = self.scenario("failover_mid").makespan_cycles;
        (recovered.saturating_sub(healthy) * 1000).checked_div(healthy).unwrap_or(0)
    }
}

/// A distinct small DFA per machine id, mirroring the cluster experiment,
/// so tables differ in footprint and the residency LRU works for a living.
fn fleet_dfas(n: usize) -> Vec<Dfa> {
    (0..n).map(|m| mod_counter(5 + (m as u32 % 8), &[0])).collect()
}

fn fleet_machines(dfas: &[Dfa]) -> Vec<FleetMachine<'_>> {
    dfas.iter()
        .map(|dfa| FleetMachine { dfa, training: b"0110", class: PriorityClass::Bulk })
        .collect()
}

fn serve_cfg(residency_bytes: usize, faults: Option<FaultPlan>) -> ServeConfig {
    ServeConfig {
        residency: Some(ResidencyConfig { capacity_bytes: residency_bytes }),
        scheme_config: SchemeConfig { faults, ..SchemeConfig::default() },
        ..ServeConfig::default()
    }
}

/// Runs the failover experiment: a healthy reference, a mid-trace device
/// kill recovered through checkpoint failover, and the same kill with the
/// migration path under fault injection.
pub fn run_failover_exp(cfg: &FailoverExperimentConfig) -> FailoverExperimentReport {
    let dfas = fleet_dfas(cfg.n_machines);
    let machines = fleet_machines(&dfas);
    let devices = vec![
        ClusterDevice::rtx3090_pcie(),
        ClusterDevice::rtx3090_pcie(),
        ClusterDevice::rtx3090_pcie(),
    ];
    let trace = Trace::synthetic(51, cfg.streams, cfg.n_machines, 220, 24..160, b"01");

    let healthy_cfg = ClusterConfig {
        vnodes: cfg.vnodes,
        serve: serve_cfg(cfg.residency_bytes, None),
        rebalance: None,
        outage: None,
        failover: None,
    };
    let healthy = run_cluster(&devices, &machines, &trace, &healthy_cfg)
        .expect("the synthetic trace is servable");

    // Kill the busiest device halfway through the arrival schedule — the
    // worst honest case: a large admitted prefix and a large orphan tail.
    let victim = (0..devices.len())
        .max_by_key(|&d| healthy.devices[d].report.streams)
        .expect("nonempty fleet");
    let at_cycle = trace.arrivals()[trace.len() / 2].arrival_cycle;
    let failover = FailoverConfig {
        checkpoint_every_batches: cfg.checkpoint_every_batches,
        ..FailoverConfig::default()
    };
    let mid_cfg = ClusterConfig {
        outage: Some(DeviceOutage { device: victim, at_cycle }),
        failover: Some(failover),
        ..healthy_cfg.clone()
    };
    let mid =
        run_cluster(&devices, &machines, &trace, &mid_cfg).expect("failover recovery completes");

    // The same kill with faults on: engine copies *and* the checkpoint
    // migration itself roll against the plan, so the replay bill includes
    // retries and backoff.
    let faulty_plan = FaultPlan { copy_fail_permille: 400, ..FaultPlan::chaos(51, 60) };
    let faulty_cfg = ClusterConfig {
        serve: serve_cfg(cfg.residency_bytes, Some(faulty_plan)),
        ..mid_cfg.clone()
    };
    let faulty = run_cluster(&devices, &machines, &trace, &faulty_cfg)
        .expect("faulty failover recovery completes");

    FailoverExperimentReport {
        scenarios: vec![
            FailoverScenario { name: "crash_free", report: healthy },
            FailoverScenario { name: "failover_mid", report: mid },
            FailoverScenario { name: "failover_faulty", report: faulty },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failover_scenarios_lose_nothing_and_pay_a_measured_price() {
        let r = run_failover_exp(&FailoverExperimentConfig::default());
        let healthy = r.scenario("crash_free");
        assert_eq!(healthy.lost_streams, 0);
        assert_eq!(healthy.failover.checkpoints_taken, 0, "no failover, no checkpoints");
        for name in ["failover_mid", "failover_faulty"] {
            let rep = r.scenario(name);
            assert_eq!(rep.lost_streams, 0, "{name}: failover must conserve every stream");
            assert_eq!(rep.streams, healthy.streams, "{name}");
            assert!(rep.failover.checkpoints_taken >= 1, "{name}");
            assert!(rep.failover.checkpoint_bytes > 0, "{name}");
        }
        let mid = r.scenario("failover_mid");
        assert!(
            mid.failover.migrations_replayed > 0,
            "a mid-trace kill must orphan streams onto survivors"
        );
        assert!(mid.failover.replay_cycles > 0, "checkpoint migration is priced, not free");
        assert_eq!(mid.failover.migration_retries, 0, "no fault plan, no failed copies");
    }

    #[test]
    fn failover_experiment_is_deterministic() {
        let cfg = FailoverExperimentConfig::default();
        let a = run_failover_exp(&cfg);
        let b = run_failover_exp(&cfg);
        assert_eq!(a.total_makespan(), b.total_makespan());
        for (x, y) in a.scenarios.iter().zip(&b.scenarios) {
            assert_eq!(x.report, y.report, "{}", x.name);
        }
    }
}
