//! The `serve` experiment: end-to-end serving of a multi-machine arrival
//! trace under every batching policy, with and without copy/compute
//! overlap.
//!
//! This is the experiment the ROADMAP's "multi-stream serving" line asks
//! for: instead of one-shot batches it drives the full `gspecpal-serve`
//! pipeline — admission, batching, PCIe transfer charging, double-buffered
//! overlap — over a deterministic trace of streams for two rule-set
//! machines, and reports latency percentiles, sustained throughput, and
//! the transfer/overlap economics per policy. The perf gate watches the
//! summed makespan.

use gspecpal_fsm::{FrequencyProfile, TransformedDfa};
use gspecpal_gpu::{Phase, PhaseProfile};
use gspecpal_regex::{compile_set, CompileConfig};
use gspecpal_serve::{serve, BatchPolicy, ServeConfig, ServeMachine, StreamArrival, Trace};
use gspecpal_workloads::inputs;

use crate::experiments::ExperimentConfig;

/// One `(policy, overlap)` serve run, summarized for reports.
#[derive(Clone, Debug)]
pub struct ServeRunSummary {
    /// Policy name (`fifo` / `deadline` / `adaptive`).
    pub policy: &'static str,
    /// Whether copy/compute overlap was enabled.
    pub overlap: bool,
    /// Wall-clock of the run in cycles.
    pub makespan_cycles: u64,
    /// Engine-busy cycles (copies + kernels; exceeds makespan when copies
    /// overlap compute).
    pub busy_cycles: u64,
    /// The run's merged phase breakdown (`Transfer` now nonzero).
    pub profile: PhaseProfile,
    /// Batches dispatched.
    pub batches: u64,
    /// Delivery-latency percentiles in cycles.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Worst stream.
    pub max: u64,
    /// Sustained throughput over the makespan.
    pub bytes_per_cycle: f64,
    /// Share of copy cycles hidden under kernels, in permille.
    pub overlap_efficiency_permille: u64,
    /// Streams delayed by a full queue.
    pub backpressure_events: u64,
    /// Peak admission-queue depth.
    pub peak_queue_depth: u64,
}

/// The full serve experiment: one summary per `(policy, overlap)` pair.
#[derive(Clone, Debug)]
pub struct ServeExperimentReport {
    /// Streams in the trace.
    pub streams: u64,
    /// Total input bytes served.
    pub total_bytes: u64,
    /// All runs, in fixed order (fifo, fifo-serial, deadline, adaptive).
    pub runs: Vec<ServeRunSummary>,
}

impl ServeExperimentReport {
    /// Headline total the perf gate watches: the summed makespan of every
    /// run.
    pub fn total_makespan(&self) -> u64 {
        self.runs.iter().map(|r| r.makespan_cycles).sum()
    }

    /// Transfer cycles charged across all runs.
    pub fn total_transfer_cycles(&self) -> u64 {
        self.runs.iter().map(|r| r.profile.get(Phase::Transfer).cycles).sum()
    }

    /// Paper-style text rendering.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Serving a stream trace ({} streams, {} bytes)\n",
            self.streams, self.total_bytes
        );
        for r in &self.runs {
            out.push_str(&format!(
                "  {:<9} overlap={:<5} makespan={:>9}cy p50={:>7} p99={:>8} \
                 {:.4} B/cy transfer={}cy hidden={}‰ backpressure={}\n",
                r.policy,
                r.overlap,
                r.makespan_cycles,
                r.p50,
                r.p99,
                r.bytes_per_cycle,
                r.profile.get(Phase::Transfer).cycles,
                r.overlap_efficiency_permille,
                r.backpressure_events,
            ));
        }
        out
    }
}

/// Deterministic arrival trace over two rule-set machines: payload bytes
/// from the seeded workload generators, arrival gaps and machine
/// assignment from pure index arithmetic — same `(seed, input_len)`, same
/// trace, bit for bit.
fn build_trace(cfg: &ExperimentConfig) -> Trace {
    let n_streams = 48usize;
    let mean_len = (cfg.input_len / n_streams).clamp(64, 16 * 1024);
    let spice: Vec<Vec<u8>> = vec![b"attack7".to_vec(), b"exploit".to_vec()];
    let sigs: Vec<Vec<u8>> = vec![b"MZcafe".to_vec()];
    let mut clock = 0u64;
    let arrivals = (0..n_streams)
        .map(|i| {
            // Inter-arrival gaps cycle through a bursty pattern: three
            // near-simultaneous arrivals, then a lull.
            clock += if i % 4 == 3 { 4 * mean_len as u64 } else { (i as u64 * 7919) % 97 };
            let len = mean_len / 2 + ((i * 2_654_435_761) % mean_len.max(1));
            let machine = (i / 6) % 2;
            let bytes = if machine == 0 {
                inputs::network_trace(cfg.seed ^ i as u64, len, &spice)
            } else {
                inputs::executable_blob(cfg.seed ^ i as u64, len, &sigs)
            };
            StreamArrival { arrival_cycle: clock, machine, bytes }
        })
        .collect();
    Trace::from_arrivals(arrivals)
}

/// Runs the serve experiment: two frequency-transformed rule-set machines,
/// one deterministic trace, all three policies (plus FIFO with overlap
/// disabled, the serialization baseline).
pub fn run_serve(cfg: &ExperimentConfig) -> ServeExperimentReport {
    let net_rules = ["attack[0-9]*", "GET /admin", "exploit"];
    let av_rules = ["MZ(cafe|babe)", "virus[a-f]+"];
    let net_dfa = compile_set(&net_rules, CompileConfig::default()).expect("rules compile");
    let av_dfa = compile_set(&av_rules, CompileConfig::default()).expect("rules compile");

    let trace = build_trace(cfg);
    // Train each machine on the concatenation of its own streams' prefixes.
    let training: Vec<Vec<u8>> = (0..2)
        .map(|m| {
            let mut t: Vec<u8> = trace
                .arrivals()
                .iter()
                .filter(|a| a.machine == m)
                .flat_map(|a| a.bytes.iter().copied().take(512))
                .collect();
            t.truncate(8 * 1024);
            t
        })
        .collect();

    let net_freq = FrequencyProfile::collect(&net_dfa, &training[0]);
    let net_t = TransformedDfa::from_profile(&net_dfa, &net_freq);
    let av_freq = FrequencyProfile::collect(&av_dfa, &training[1]);
    let av_t = TransformedDfa::from_profile(&av_dfa, &av_freq);
    let machines = [
        ServeMachine::prepare(&cfg.device, net_t.dfa(), &training[0]),
        ServeMachine::prepare(&cfg.device, av_t.dfa(), &training[1]),
    ];

    let base = ServeConfig { scheme_config: cfg.scheme_config(), ..ServeConfig::default() };
    let matrix = [
        (BatchPolicy::Fifo { batch: 8 }, true),
        (BatchPolicy::Fifo { batch: 8 }, false),
        (BatchPolicy::Deadline { batch: 8, max_wait: 4096 }, true),
        (BatchPolicy::Adaptive { max_batch: 32 }, true),
    ];
    let runs = matrix
        .iter()
        .map(|&(policy, overlap)| {
            let sc = ServeConfig { policy, overlap, ..base.clone() };
            let report = serve(&cfg.device, &machines, &trace, &sc).expect("servable trace");
            ServeRunSummary {
                policy: report.policy,
                overlap: report.overlap,
                makespan_cycles: report.makespan_cycles,
                busy_cycles: report.stats.cycles,
                profile: report.stats.profile.clone(),
                batches: report.batches.len() as u64,
                p50: report.delivery.p50,
                p95: report.delivery.p95,
                p99: report.delivery.p99,
                max: report.delivery.max,
                bytes_per_cycle: report.bytes_per_cycle(),
                overlap_efficiency_permille: report.overlap_efficiency_permille,
                backpressure_events: report.backpressure_events,
                peak_queue_depth: report.peak_queue_depth() as u64,
            }
        })
        .collect();

    ServeExperimentReport {
        streams: trace.len() as u64,
        total_bytes: trace.total_bytes() as u64,
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> ExperimentConfig {
        ExperimentConfig { input_len: 16 * 1024, n_chunks: 64, ..Default::default() }
    }

    #[test]
    fn serve_experiment_is_deterministic_and_charges_transfers() {
        let cfg = small_cfg();
        let a = run_serve(&cfg);
        let b = run_serve(&cfg);
        assert_eq!(a.total_makespan(), b.total_makespan());
        assert_eq!(a.runs.len(), 4);
        assert!(a.total_transfer_cycles() > 0, "serving must charge PCIe copies");
        for r in &a.runs {
            assert_eq!(r.profile.total_cycles(), r.busy_cycles, "partition holds per run");
        }
    }

    #[test]
    fn overlap_beats_serialization_in_the_experiment() {
        let r = run_serve(&small_cfg());
        let fifo_overlap = &r.runs[0];
        let fifo_serial = &r.runs[1];
        assert!(fifo_overlap.overlap && !fifo_serial.overlap);
        assert!(
            fifo_overlap.makespan_cycles < fifo_serial.makespan_cycles,
            "overlap {} vs serial {}",
            fifo_overlap.makespan_cycles,
            fifo_serial.makespan_cycles
        );
        assert_eq!(
            fifo_overlap.busy_cycles, fifo_serial.busy_cycles,
            "same batches, same engine-busy work"
        );
    }
}
