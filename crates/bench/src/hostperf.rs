//! Host-side throughput of the serving engine: the `hostperf` experiment.
//!
//! Every other experiment in this crate measures *simulated device cycles*
//! — deterministic, byte-stable, CI-gated. This one measures the host:
//! how fast the streaming serve engine ([`gspecpal_serve::serve_source`])
//! itself chews through arrivals, and how much memory it holds while doing
//! so. The workload is a million-stream synthetic trace pulled from a
//! generator, served under [`ReportDetail::Bounded`], so the run proves the
//! tentpole claim end to end: resident memory stays bounded by the queue
//! depth and the report's fixed-budget sketches, not the stream count.
//!
//! Wall-clock throughput is inherently machine-dependent, so
//! `BENCH_hostperf.json` is a *warn-only artifact*: CI uploads it for
//! trend-watching but never gates on it. The deterministic fields
//! (makespan, batches, latency summary) double as a cheap cross-check that
//! the streaming path computed the same simulation everywhere.

use std::time::Instant;

use gspecpal_cluster::{run_cluster_source, ClusterConfig, ClusterDevice, FleetMachine};
use gspecpal_gpu::DeviceSpec;
use gspecpal_serve::{
    serve_source, BatchPolicy, LatencySummary, PriorityClass, ReportDetail, ResidencyConfig,
    ServeConfig, ServeMachine, SyntheticSource,
};

/// Workload shape for [`throughput_exp`].
#[derive(Clone, Debug)]
pub struct HostPerfConfig {
    /// Streams to pull through the engine.
    pub streams: usize,
    /// Generator seed.
    pub seed: u64,
    /// Mean inter-arrival gap in cycles (bursty at small values, so batches
    /// fill and the queue actually backpressures).
    pub mean_gap: u64,
    /// Per-stream payload length range in bytes. Small payloads keep the
    /// simulated kernel cheap, so the measurement is dominated by the host
    /// engine — admission, batching, accounting — which is the thing under
    /// test.
    pub len_range: std::ops::Range<usize>,
    /// Simulated device the engine schedules against.
    pub device: DeviceSpec,
}

impl Default for HostPerfConfig {
    fn default() -> Self {
        HostPerfConfig {
            streams: 1_000_000,
            seed: 1,
            mean_gap: 1,
            len_range: 8..24,
            device: DeviceSpec::rtx3090(),
        }
    }
}

/// Result of one [`throughput_exp`] run.
#[derive(Clone, Debug)]
pub struct HostPerfReport {
    /// Streams served (all of them — nothing is shed in this workload).
    pub streams: u64,
    /// Total payload bytes pulled through the engine.
    pub total_bytes: u64,
    /// Simulated makespan — deterministic, unlike the wall-clock fields.
    pub makespan_cycles: u64,
    /// Engine-busy simulated cycles (copies + kernels).
    pub busy_cycles: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Delivery-latency summary (sketched past the exact threshold).
    pub delivery: LatencySummary,
    /// Error bound the summary carries (4‰ once sketched).
    pub latency_error_permille: u64,
    /// Peak admission-queue depth observed.
    pub peak_queue: u64,
    /// Host wall-clock of the serve call, in milliseconds.
    pub wall_ms: u64,
    /// Streams per host second.
    pub streams_per_sec: f64,
    /// Payload megabytes per host second.
    pub mbytes_per_sec: f64,
    /// Peak resident set size (`VmHWM`) of the process in KiB, when the
    /// platform exposes it — the bounded-memory number the ISSUE asks for.
    pub peak_rss_kb: Option<u64>,
}

/// Peak resident set size (`VmHWM`) of this process in KiB. Linux-only by
/// nature of procfs; `None` anywhere the file is absent or unparsable.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Runs the host-throughput experiment: pulls `cfg.streams` synthetic
/// arrivals through the streaming serve engine in bounded-memory mode and
/// measures host wall-clock, throughput, and peak RSS alongside the
/// deterministic simulation outputs.
pub fn throughput_exp(cfg: &HostPerfConfig) -> HostPerfReport {
    let dfa = gspecpal_fsm::examples::div7();
    let machine = ServeMachine::prepare(&cfg.device, &dfa, &b"110100".repeat(256));
    let serve_cfg = ServeConfig {
        policy: BatchPolicy::Fifo { batch: 32 },
        detail: ReportDetail::Bounded,
        ..ServeConfig::default()
    };
    let source =
        SyntheticSource::new(cfg.seed, cfg.streams, 1, cfg.mean_gap, cfg.len_range.clone(), b"01");
    let t0 = Instant::now();
    let report = serve_source(&cfg.device, std::slice::from_ref(&machine), source, &serve_cfg)
        .expect("synthetic workload is always servable");
    let wall = t0.elapsed();
    let secs = wall.as_secs_f64().max(1e-6);
    HostPerfReport {
        streams: report.streams as u64,
        total_bytes: report.total_bytes as u64,
        makespan_cycles: report.makespan_cycles,
        busy_cycles: report.stats.cycles,
        batches: report.batches_dispatched,
        delivery: report.delivery,
        latency_error_permille: report.latency_error_permille,
        peak_queue: report.peak_queue as u64,
        wall_ms: wall.as_millis() as u64,
        streams_per_sec: report.streams as f64 / secs,
        mbytes_per_sec: report.total_bytes as f64 / (1024.0 * 1024.0) / secs,
        peak_rss_kb: peak_rss_kb(),
    }
}

/// Result of one [`fleet_throughput_exp`] run: the cluster row of the
/// host-throughput harness.
#[derive(Clone, Debug)]
pub struct FleetPerfReport {
    /// Streams routed fleet-wide.
    pub streams: u64,
    /// Total payload bytes.
    pub total_bytes: u64,
    /// Fleet makespan — deterministic.
    pub makespan_cycles: u64,
    /// `(device name, streams)` per device, in device order.
    pub device_streams: Vec<(String, u64)>,
    /// Fleet residency hit rate in permille.
    pub residency_hit_permille: u64,
    /// Peak-to-mean device load in permille.
    pub imbalance_permille: u64,
    /// Delivery-latency upper bound over the fleet (per-device summaries
    /// are sketched in bounded mode).
    pub delivery: LatencySummary,
    /// Host wall-clock of the cluster run, in milliseconds.
    pub wall_ms: u64,
    /// Streams per host second through router + device engines.
    pub streams_per_sec: f64,
    /// Peak resident set size in KiB, where procfs exposes it.
    pub peak_rss_kb: Option<u64>,
}

/// How many machines (FSMs) the fleet row spreads the synthetic workload
/// over.
const FLEET_MACHINES: usize = 8;

/// Runs the cluster row of the host-throughput harness: the same
/// million-stream synthetic source routed across a heterogeneous
/// A100/RTX 3090/T4 fleet via [`run_cluster_source`], every device in
/// bounded-memory mode with residency modeling on. Wall-clock fields are
/// machine-dependent (warn-only); the simulated fields are deterministic.
pub fn fleet_throughput_exp(cfg: &HostPerfConfig) -> FleetPerfReport {
    let dfas: Vec<gspecpal_fsm::Dfa> = (0..FLEET_MACHINES)
        .map(|m| gspecpal_fsm::examples::mod_counter(5 + (m as u32 % 8), &[0]))
        .collect();
    let fleet: Vec<FleetMachine<'_>> = dfas
        .iter()
        .map(|dfa| FleetMachine { dfa, training: b"0110", class: PriorityClass::Bulk })
        .collect();
    let devices =
        vec![ClusterDevice::a100_nvlink(), ClusterDevice::rtx3090_pcie(), ClusterDevice::t4_pcie()];
    let cluster_cfg = ClusterConfig {
        serve: ServeConfig {
            policy: BatchPolicy::Fifo { batch: 32 },
            detail: ReportDetail::Bounded,
            residency: Some(ResidencyConfig { capacity_bytes: 24 * 1024 }),
            ..ServeConfig::default()
        },
        ..ClusterConfig::default()
    };
    let source = SyntheticSource::new(
        cfg.seed,
        cfg.streams,
        FLEET_MACHINES,
        cfg.mean_gap,
        cfg.len_range.clone(),
        b"01",
    );
    let t0 = Instant::now();
    let report = run_cluster_source(&devices, &fleet, source, &cluster_cfg)
        .expect("synthetic fleet workload is always servable");
    let wall = t0.elapsed();
    let secs = wall.as_secs_f64().max(1e-6);
    FleetPerfReport {
        streams: report.streams as u64,
        total_bytes: report.devices.iter().map(|d| d.report.total_bytes as u64).sum(),
        makespan_cycles: report.makespan_cycles,
        device_streams: report
            .devices
            .iter()
            .map(|d| (d.device.clone(), d.report.streams as u64))
            .collect(),
        residency_hit_permille: report.residency.hit_permille(),
        imbalance_permille: report.imbalance_permille,
        delivery: report.delivery,
        wall_ms: wall.as_millis() as u64,
        streams_per_sec: report.streams as f64 / secs,
        peak_rss_kb: peak_rss_kb(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulation_fields_are_deterministic_and_complete() {
        // A miniature of the million-stream run: everything served, nothing
        // materialized, and two runs agree on every simulated field (only
        // the wall-clock numbers may differ).
        let cfg = HostPerfConfig { streams: 6_000, ..HostPerfConfig::default() };
        let a = throughput_exp(&cfg);
        let b = throughput_exp(&cfg);
        assert_eq!(a.streams, 6_000);
        assert_eq!(a.streams, b.streams);
        assert_eq!(a.total_bytes, b.total_bytes);
        assert_eq!(a.makespan_cycles, b.makespan_cycles);
        assert_eq!(a.busy_cycles, b.busy_cycles);
        assert_eq!(a.batches, b.batches);
        assert_eq!(a.delivery, b.delivery);
        assert_eq!(a.peak_queue, b.peak_queue);
        // Past the exact threshold the summary must carry the sketch bound.
        assert_eq!(a.latency_error_permille, gspecpal_serve::LatencySketch::ERROR_PERMILLE);
        assert!(a.delivery.max >= a.delivery.p99);
        assert!(a.streams_per_sec > 0.0);
    }

    #[test]
    fn fleet_row_is_deterministic_in_its_simulated_fields() {
        let cfg = HostPerfConfig { streams: 4_000, ..HostPerfConfig::default() };
        let a = fleet_throughput_exp(&cfg);
        let b = fleet_throughput_exp(&cfg);
        assert_eq!(a.streams, 4_000);
        assert_eq!(a.streams, b.streams);
        assert_eq!(a.total_bytes, b.total_bytes);
        assert_eq!(a.makespan_cycles, b.makespan_cycles);
        assert_eq!(a.device_streams, b.device_streams);
        assert_eq!(a.residency_hit_permille, b.residency_hit_permille);
        assert_eq!(a.imbalance_permille, b.imbalance_permille);
        assert_eq!(a.delivery, b.delivery);
        assert_eq!(a.device_streams.len(), 3);
        assert!(a.device_streams.iter().all(|(_, n)| *n > 0), "{:?}", a.device_streams);
        assert!(a.residency_hit_permille > 0);
    }

    #[test]
    fn rss_probe_works_where_procfs_exists() {
        if std::path::Path::new("/proc/self/status").exists() {
            let kb = peak_rss_kb().expect("VmHWM parses on procfs platforms");
            assert!(kb > 0);
        }
    }
}
