//! Experiment runners, one per table/figure of the paper's evaluation (§V).

use gspecpal::run::{RunOutcome, SchemeKind};
use gspecpal::schemes::{exec_phase, Job};
use gspecpal::table::{DeviceTable, TableLayout};
use gspecpal::{GSpecPal, SchemeConfig, Selector};
use gspecpal_fsm::{Dfa, FrequencyProfile, TransformedDfa};
use gspecpal_gpu::{DeviceSpec, PhaseProfile};
use gspecpal_workloads::{build_suite, Benchmark, Family, Tier};

use crate::report::{f2, geomean, mean, pct, render_table};

/// Shared experiment configuration.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Suite seed (which 36 machines get generated).
    pub seed: u64,
    /// Input stream length in bytes. The paper uses 10 MB; the default here
    /// is 256 KiB, which keeps every simulated ratio in the same regime
    /// (chunk length ≫ convergence length) while making the full harness
    /// run in minutes. Pass `--input-kb` to scale up.
    pub input_len: usize,
    /// Chunk/thread count `N`.
    pub n_chunks: usize,
    /// The simulated device.
    pub device: DeviceSpec,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            seed: 1,
            input_len: 256 * 1024,
            n_chunks: 256,
            device: DeviceSpec::rtx3090(),
        }
    }
}

impl ExperimentConfig {
    /// The scheme configuration these experiments run with.
    pub fn scheme_config(&self) -> SchemeConfig {
        SchemeConfig { n_chunks: self.n_chunks, ..SchemeConfig::default() }
    }

    /// A framework instance for this configuration.
    pub fn framework(&self) -> GSpecPal {
        GSpecPal::new(self.device.clone()).with_config(self.scheme_config())
    }
}

/// Builds a job over a frequency-transformed table and hands it to `f`.
fn with_job<R>(
    cfg: &ExperimentConfig,
    scheme_config: SchemeConfig,
    dfa: &Dfa,
    input: &[u8],
    f: impl FnOnce(&Job<'_>) -> R,
) -> R {
    let training_len = ((input.len() as f64 * 0.005) as usize).max(512).min(input.len());
    let freq = FrequencyProfile::collect(dfa, &input[..training_len]);
    let transformed = TransformedDfa::from_profile(dfa, &freq);
    let hot =
        DeviceTable::hot_rows_for_device(transformed.dfa(), TableLayout::Transformed, &cfg.device);
    let table = DeviceTable::transformed(transformed.dfa(), hot);
    let mut sc = scheme_config;
    sc.n_chunks = sc.n_chunks.min(input.len().max(1));
    let job = Job::new(&cfg.device, &table, input, sc).expect("valid job");
    f(&job)
}

// ---------------------------------------------------------------------------
// Figure 3: spec-k execution time normalized to spec-1 (V&R ignored).
// ---------------------------------------------------------------------------

/// Fig 3 data: per k, the mean normalized speculative-execution time.
#[derive(Clone, Debug)]
pub struct Fig3Report {
    /// The k values swept.
    pub ks: Vec<usize>,
    /// `rows[f][ki]` = mean normalized exec time of family `f` at `ks[ki]`.
    pub per_family: Vec<(Family, Vec<f64>)>,
    /// Overall mean per k.
    pub overall: Vec<f64>,
}

/// Runs the Fig 3 experiment: speculative execution only, k ∈ {1, 4, 6, 8}.
pub fn run_fig3(cfg: &ExperimentConfig) -> Fig3Report {
    let ks = vec![1usize, 4, 6, 8];
    let suite = build_suite(cfg.seed);
    let mut per_family = Vec::new();
    for family in Family::all() {
        let mut sums = vec![0.0; ks.len()];
        let mut count = 0usize;
        for b in suite.iter().filter(|b| b.family == family) {
            let input = b.generate_input(cfg.input_len, 0);
            let mut cycles = Vec::with_capacity(ks.len());
            for &k in &ks {
                let c = with_job(cfg, cfg.scheme_config(), &b.dfa, &input, |job| {
                    exec_phase(job, k).exec_stats.cycles
                });
                cycles.push(c as f64);
            }
            for (i, c) in cycles.iter().enumerate() {
                sums[i] += c / cycles[0];
            }
            count += 1;
        }
        let means: Vec<f64> = sums.iter().map(|s| s / count as f64).collect();
        per_family.push((family, means));
    }
    let overall = (0..ks.len())
        .map(|i| mean(&per_family.iter().map(|(_, v)| v[i]).collect::<Vec<_>>()))
        .collect();
    Fig3Report { ks, per_family, overall }
}

impl Fig3Report {
    /// Paper-style text rendering.
    pub fn render(&self) -> String {
        let mut header = vec!["Family".to_string()];
        header.extend(self.ks.iter().map(|k| format!("spec-{k}")));
        let mut rows = Vec::new();
        for (f, v) in &self.per_family {
            let mut row = vec![f.to_string()];
            row.extend(v.iter().map(|x| f2(*x)));
            rows.push(row);
        }
        let mut row = vec!["mean".to_string()];
        row.extend(self.overall.iter().map(|x| f2(*x)));
        rows.push(row);
        format!(
            "Figure 3: execution time of spec-k normalized to spec-1 \
             (verification and recovery ignored)\n{}",
            render_table(&header, &rows)
        )
    }
}

// ---------------------------------------------------------------------------
// Table II: benchmark characteristics.
// ---------------------------------------------------------------------------

/// One family row of Table II.
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// The benchmark family this row aggregates.
    pub family: Family,
    /// Min/max state counts.
    pub states_range: (u32, u32),
    /// Mean state count.
    pub states_mean: f64,
    /// Min/max spec-1 lookback accuracy.
    pub spec1_range: (f64, f64),
    /// Mean spec-1 accuracy.
    pub spec1_mean: f64,
    /// Min/max spec-4 lookback accuracy.
    pub spec4_range: (f64, f64),
    /// Mean spec-4 accuracy.
    pub spec4_mean: f64,
    /// FSMs flagged as having highly input-sensitive speculation.
    pub input_sensitive: usize,
    /// Min/max of the 10-step unique-state counts.
    pub uniq_range: (f64, f64),
    /// Mean 10-step unique-state count.
    pub uniq_mean: f64,
    /// Wall-clock profiling time summed over the family.
    pub profiling_seconds: f64,
}

/// Table II report.
#[derive(Clone, Debug)]
pub struct Table2Report {
    /// One row per family, in the paper's order.
    pub rows: Vec<Table2Row>,
}

/// Profiles every benchmark on its training slice (0.5% of the input, as in
/// §V-B) and aggregates per family.
pub fn run_table2(cfg: &ExperimentConfig) -> Table2Report {
    let suite = build_suite(cfg.seed);
    let selector = Selector::default();
    let mut rows = Vec::new();
    for family in Family::all() {
        let mut states = Vec::new();
        let mut spec1 = Vec::new();
        let mut spec4 = Vec::new();
        let mut uniq = Vec::new();
        let mut sensitive = 0usize;
        let mut prof_time = 0.0;
        for b in suite.iter().filter(|b| b.family == family) {
            let input = b.generate_input(cfg.input_len, 0);
            let p = selector.profile(&b.dfa, &input);
            states.push(f64::from(b.dfa.n_states()));
            spec1.push(p.spec1_accuracy);
            spec4.push(p.spec4_accuracy);
            uniq.push(p.convergence.mean_unique_states);
            sensitive += usize::from(selector.is_input_sensitive(&p));
            prof_time += p.profiling_seconds;
        }
        let rng = |v: &[f64]| {
            (
                v.iter().cloned().fold(f64::INFINITY, f64::min),
                v.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            )
        };
        let (s_lo, s_hi) = rng(&states);
        let (a1_lo, a1_hi) = rng(&spec1);
        let (a4_lo, a4_hi) = rng(&spec4);
        let (u_lo, u_hi) = rng(&uniq);
        rows.push(Table2Row {
            family,
            states_range: (s_lo as u32, s_hi as u32),
            states_mean: mean(&states),
            spec1_range: (a1_lo, a1_hi),
            spec1_mean: mean(&spec1),
            spec4_range: (a4_lo, a4_hi),
            spec4_mean: mean(&spec4),
            input_sensitive: sensitive,
            uniq_range: (u_lo, u_hi),
            uniq_mean: mean(&uniq),
            profiling_seconds: prof_time,
        });
    }
    Table2Report { rows }
}

impl Table2Report {
    /// Paper-style text rendering.
    pub fn render(&self) -> String {
        let header: Vec<String> = [
            "Source",
            "#States range",
            "mean",
            "spec-1 range %",
            "mean %",
            "spec-4 range %",
            "mean %",
            "#input-sens.",
            "#uniq(10) range",
            "mean",
            "Profiling (s)",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.family.to_string(),
                    format!("[{}, {}]", r.states_range.0, r.states_range.1),
                    format!("{:.0}", r.states_mean),
                    format!("[{}, {}]", pct(r.spec1_range.0), pct(r.spec1_range.1)),
                    pct(r.spec1_mean),
                    format!("[{}, {}]", pct(r.spec4_range.0), pct(r.spec4_range.1)),
                    pct(r.spec4_mean),
                    r.input_sensitive.to_string(),
                    format!("[{:.1}, {:.1}]", r.uniq_range.0, r.uniq_range.1),
                    f2(r.uniq_mean),
                    format!("{:.2}", r.profiling_seconds),
                ]
            })
            .collect();
        format!("Table II: benchmark characteristics\n{}", render_table(&header, &rows))
    }
}

// ---------------------------------------------------------------------------
// Figure 8 (+ headline + selector evaluation).
// ---------------------------------------------------------------------------

/// One benchmark's Fig 8 measurements.
#[derive(Clone, Debug)]
pub struct Fig8Row {
    /// Benchmark name (`Snort3`, …).
    pub name: String,
    /// Benchmark family.
    pub family: Family,
    /// Behavioural tier.
    pub tier: Tier,
    /// Total simulated cycles for PM (the baseline).
    pub pm: u64,
    /// Total simulated cycles for SRE.
    pub sre: u64,
    /// Total simulated cycles for RR.
    pub rr: u64,
    /// Total simulated cycles for NF.
    pub nf: u64,
    /// Total simulated cycles for SFA (the mapping-composition rival the
    /// selector weighs against the four speculative schemes).
    pub sfa: u64,
    /// What the decision tree picked.
    pub selected: SchemeKind,
    /// Cycles of the selected scheme.
    pub selected_cycles: u64,
    /// Per-scheme phase profiles in PM, SRE, RR, NF, SFA order. Each
    /// profile's total cycles equal the scheme's cycle column above, so the
    /// perf reports can decompose the figure's totals without re-running.
    pub profiles: [PhaseProfile; 5],
}

impl Fig8Row {
    /// Speedup of `scheme` over the PM baseline.
    pub fn speedup(&self, scheme: SchemeKind) -> f64 {
        let c = match scheme {
            SchemeKind::Pm => self.pm,
            SchemeKind::Sre => self.sre,
            SchemeKind::Rr => self.rr,
            SchemeKind::Nf => self.nf,
            SchemeKind::Sfa => self.sfa,
            _ => unreachable!("fig8 compares the GSpecPal schemes plus SFA"),
        };
        self.pm as f64 / c as f64
    }

    /// Speedup of the selector's pick over PM.
    pub fn selected_speedup(&self) -> f64 {
        self.pm as f64 / self.selected_cycles as f64
    }

    /// Cycles of the fastest scheme (the oracle).
    pub fn best_cycles(&self) -> u64 {
        self.pm.min(self.sre).min(self.rr).min(self.nf).min(self.sfa)
    }

    /// Whether the selector's pick is (near-)optimal: within 10% of the
    /// oracle. RR and NF are near-ties by design on many FSMs (the paper
    /// reports ~1% run-to-run variance and a 3% mean selector loss), so a
    /// strict argmin would count coin flips as errors.
    pub fn selector_optimal(&self) -> bool {
        self.selected_cycles as f64 <= self.best_cycles() as f64 * 1.10
    }

    /// The compared schemes with their cycle totals and phase profiles, in
    /// PM, SRE, RR, NF, SFA order (the layout of [`Fig8Row::profiles`]).
    pub fn scheme_profiles(&self) -> [(SchemeKind, u64, &PhaseProfile); 5] {
        [
            (SchemeKind::Pm, self.pm, &self.profiles[0]),
            (SchemeKind::Sre, self.sre, &self.profiles[1]),
            (SchemeKind::Rr, self.rr, &self.profiles[2]),
            (SchemeKind::Nf, self.nf, &self.profiles[3]),
            (SchemeKind::Sfa, self.sfa, &self.profiles[4]),
        ]
    }
}

/// Figure 8 report.
#[derive(Clone, Debug)]
pub struct Fig8Report {
    /// One row per benchmark, suite order.
    pub rows: Vec<Fig8Row>,
}

/// Runs all four schemes plus the selector on the full 36-FSM suite.
pub fn run_fig8(cfg: &ExperimentConfig) -> Fig8Report {
    let suite = build_suite(cfg.seed);
    let fw = cfg.framework();
    let rows = suite
        .iter()
        .map(|b| {
            let input = b.generate_input(cfg.input_len, 0);
            let get = |s: SchemeKind| {
                let o = fw.run_with(&b.dfa, &input, s);
                (o.total_cycles(), o.phase_profile())
            };
            let (pm, pm_profile) = get(SchemeKind::Pm);
            let (sre, sre_profile) = get(SchemeKind::Sre);
            let (rr, rr_profile) = get(SchemeKind::Rr);
            let (nf, nf_profile) = get(SchemeKind::Nf);
            let (sfa, sfa_profile) = get(SchemeKind::Sfa);
            let report = fw.process(&b.dfa, &input);
            let selected = report.selected;
            let selected_cycles = match selected {
                SchemeKind::Pm => pm,
                SchemeKind::Sre => sre,
                SchemeKind::Rr => rr,
                SchemeKind::Nf => nf,
                SchemeKind::Sfa => sfa,
                other => {
                    // The selector only emits the GSpecPal schemes plus SFA.
                    unreachable!("selector picked {other}")
                }
            };
            Fig8Row {
                name: b.name(),
                family: b.family,
                tier: b.tier,
                pm,
                sre,
                rr,
                nf,
                sfa,
                selected,
                selected_cycles,
                profiles: [pm_profile, sre_profile, rr_profile, nf_profile, sfa_profile],
            }
        })
        .collect();
    Fig8Report { rows }
}

impl Fig8Report {
    /// Mean speedup of `scheme` over PM across the suite.
    pub fn mean_speedup(&self, scheme: SchemeKind) -> f64 {
        mean(&self.rows.iter().map(|r| r.speedup(scheme)).collect::<Vec<_>>())
    }

    /// Geometric-mean speedup of `scheme` over PM.
    pub fn geomean_speedup(&self, scheme: SchemeKind) -> f64 {
        geomean(&self.rows.iter().map(|r| r.speedup(scheme)).collect::<Vec<_>>())
    }

    /// Mean speedup of the selector's pick over PM (the paper's headline
    /// 7.2× number).
    pub fn selector_mean_speedup(&self) -> f64 {
        mean(&self.rows.iter().map(|r| r.selected_speedup()).collect::<Vec<_>>())
    }

    /// Maximum speedup over PM achieved by any scheme on any FSM (the
    /// paper's "up to 20×").
    pub fn max_speedup(&self) -> f64 {
        self.rows
            .iter()
            .flat_map(|r| {
                [SchemeKind::Sre, SchemeKind::Rr, SchemeKind::Nf, SchemeKind::Sfa]
                    .into_iter()
                    .map(move |s| r.speedup(s))
            })
            .fold(0.0, f64::max)
    }

    /// Fraction of FSMs where the selector picked the fastest scheme (the
    /// paper reports 29/36 = 80.6%).
    pub fn selector_accuracy(&self) -> f64 {
        let hits = self.rows.iter().filter(|r| r.selector_optimal()).count();
        hits as f64 / self.rows.len() as f64
    }

    /// Mean performance loss of the selector against the oracle (paper: 3%).
    pub fn selector_loss(&self) -> f64 {
        mean(
            &self
                .rows
                .iter()
                .map(|r| r.selected_cycles as f64 / r.best_cycles() as f64 - 1.0)
                .collect::<Vec<_>>(),
        )
    }

    /// Paper-style text rendering.
    pub fn render(&self) -> String {
        let header: Vec<String> =
            ["FSM", "tier", "SRE", "RR", "NF", "SFA", "Selected", "Sel.speedup"]
                .iter()
                .map(|s| s.to_string())
                .collect();
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    r.tier.name().to_string(),
                    f2(r.speedup(SchemeKind::Sre)),
                    f2(r.speedup(SchemeKind::Rr)),
                    f2(r.speedup(SchemeKind::Nf)),
                    f2(r.speedup(SchemeKind::Sfa)),
                    r.selected.to_string(),
                    f2(r.selected_speedup()),
                ]
            })
            .collect();
        format!(
            "Figure 8: speedups over PM(spec-4)\n{}\n\
             mean speedup: SRE {} / RR {} / NF {} / SFA {} / Selector {}\n\
             max speedup over PM: {}\n\
             selector accuracy: {} ({}/{}), mean loss vs oracle: {}%\n",
            render_table(&header, &rows),
            f2(self.mean_speedup(SchemeKind::Sre)),
            f2(self.mean_speedup(SchemeKind::Rr)),
            f2(self.mean_speedup(SchemeKind::Nf)),
            f2(self.mean_speedup(SchemeKind::Sfa)),
            f2(self.selector_mean_speedup()),
            f2(self.max_speedup()),
            pct(self.selector_accuracy()),
            self.rows.iter().filter(|r| r.selector_optimal()).count(),
            self.rows.len(),
            f2(self.selector_loss() * 100.0),
        )
    }
}

/// Selector evaluation (§V-C): accuracy and loss versus the oracle. This is
/// a view over the Fig 8 data.
pub fn run_selector_eval(cfg: &ExperimentConfig) -> Fig8Report {
    run_fig8(cfg)
}

// ---------------------------------------------------------------------------
// Table III: runtime accuracy + active threads for the Snort family.
// ---------------------------------------------------------------------------

/// One Snort FSM's Table III row.
#[derive(Clone, Debug)]
pub struct Table3Row {
    /// 1-based Snort FSM index.
    pub index: usize,
    /// Behavioural tier.
    pub tier: Tier,
    /// `(accuracy, avg active threads during recovery)` per scheme in the
    /// order PM, SRE, RR, NF.
    pub per_scheme: [(f64, f64); 4],
}

/// Table III report.
#[derive(Clone, Debug)]
pub struct Table3Report {
    /// One row per Snort FSM.
    pub rows: Vec<Table3Row>,
}

/// Runs PM/SRE/RR/NF on the 12 Snort FSMs, reporting runtime speculation
/// accuracy and recovery-thread utilization.
pub fn run_table3(cfg: &ExperimentConfig) -> Table3Report {
    let suite = build_suite(cfg.seed);
    let fw = cfg.framework();
    let rows = suite
        .iter()
        .filter(|b| b.family == Family::Snort)
        .map(|b| {
            let input = b.generate_input(cfg.input_len, 0);
            let outcome = |s: SchemeKind| -> (f64, f64) {
                let o: RunOutcome = fw.run_with(&b.dfa, &input, s);
                (o.runtime_accuracy(), o.avg_active_threads_during_recovery())
            };
            Table3Row {
                index: b.index,
                tier: b.tier,
                per_scheme: [
                    outcome(SchemeKind::Pm),
                    outcome(SchemeKind::Sre),
                    outcome(SchemeKind::Rr),
                    outcome(SchemeKind::Nf),
                ],
            }
        })
        .collect();
    Table3Report { rows }
}

impl Table3Report {
    /// Paper-style text rendering.
    pub fn render(&self) -> String {
        let header: Vec<String> = [
            "Snort", "tier", "PM acc%", "SRE acc%", "RR acc%", "NF acc%", "PM act", "SRE act",
            "RR act", "NF act",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                let mut row = vec![r.index.to_string(), r.tier.name().to_string()];
                row.extend(r.per_scheme.iter().map(|(a, _)| pct(*a)));
                row.extend(r.per_scheme.iter().map(|(_, t)| format!("{t:.1}")));
                row
            })
            .collect();
        format!(
            "Table III: runtime speculation accuracy and average #active \
             threads during recovery (Snort)\n{}",
            render_table(&header, &rows)
        )
    }
}

// ---------------------------------------------------------------------------
// Figure 7: sensitivity to the VR_others register budget.
// ---------------------------------------------------------------------------

/// Fig 7 report: normalized RR execution time per register budget.
#[derive(Clone, Debug)]
pub struct Fig7Report {
    /// The register budgets swept.
    pub registers: Vec<usize>,
    /// `per_family[f].1[ri]` = mean RR time with `registers[ri]`, normalized
    /// to the family's best.
    pub per_family: Vec<(Family, Vec<f64>)>,
}

/// Runs RR with varying `VR_others` register budgets over the benchmarks
/// where recovery records matter (the deep-speculation tiers).
pub fn run_fig7(cfg: &ExperimentConfig) -> Fig7Report {
    let registers = vec![8usize, 12, 16, 20, 24];
    let suite = build_suite(cfg.seed);
    let mut per_family = Vec::new();
    for family in Family::all() {
        let mut sums = vec![0.0; registers.len()];
        let mut count = 0usize;
        for b in suite.iter().filter(|b| {
            b.family == family && matches!(b.tier, Tier::NonConvergent | Tier::InputSensitive)
        }) {
            let input = b.generate_input(cfg.input_len, 0);
            let mut cycles = Vec::with_capacity(registers.len());
            for &r in &registers {
                let sc = SchemeConfig { vr_others_registers: r, ..cfg.scheme_config() };
                let c = with_job(cfg, sc, &b.dfa, &input, |job| {
                    gspecpal::run_scheme(SchemeKind::Rr, job).total_cycles()
                });
                cycles.push(c as f64);
            }
            let best = cycles.iter().cloned().fold(f64::INFINITY, f64::min);
            for (i, c) in cycles.iter().enumerate() {
                sums[i] += c / best;
            }
            count += 1;
        }
        per_family.push((family, sums.iter().map(|s| s / count.max(1) as f64).collect()));
    }
    Fig7Report { registers, per_family }
}

impl Fig7Report {
    /// The register count with the lowest mean time for `family`.
    pub fn best_registers(&self, family: Family) -> usize {
        let (_, v) = self.per_family.iter().find(|(f, _)| *f == family).expect("family present");
        let mut best = 0;
        for i in 1..v.len() {
            if v[i] < v[best] {
                best = i;
            }
        }
        self.registers[best]
    }

    /// Paper-style text rendering.
    pub fn render(&self) -> String {
        let mut header = vec!["Family".to_string()];
        header.extend(self.registers.iter().map(|r| format!("R={r}")));
        let rows: Vec<Vec<String>> = self
            .per_family
            .iter()
            .map(|(f, v)| {
                let mut row = vec![f.to_string()];
                row.extend(v.iter().map(|x| f2(*x)));
                row
            })
            .collect();
        format!(
            "Figure 7: RR time vs. #registers for VR_others (normalized to \
             each family's best)\n{}",
            render_table(&header, &rows)
        )
    }
}

// ---------------------------------------------------------------------------
// Figure 9: recovery cost per chunk under higher thread utilization.
// ---------------------------------------------------------------------------

/// Fig 9 report: per-chunk recovery time of RR and NF normalized to SRE.
#[derive(Clone, Debug)]
pub struct Fig9Report {
    /// Rows of `(benchmark name, RR/SRE ratio, NF/SRE ratio)`.
    pub rows: Vec<(String, f64, f64)>,
}

/// Measures the mean wall duration of recovery rounds for SRE/RR/NF on 12
/// DFAs drawn across the families (the paper picks 12 at random).
pub fn run_fig9(cfg: &ExperimentConfig) -> Fig9Report {
    let suite = build_suite(cfg.seed);
    let fw = cfg.framework();
    // Deterministic selection: the 4 deep-speculation benchmarks of each
    // family (where recovery actually happens).
    let mut rows = Vec::new();
    for family in Family::all() {
        let picks: Vec<&Benchmark> = suite
            .iter()
            .filter(|b| {
                b.family == family && matches!(b.tier, Tier::NonConvergent | Tier::InputSensitive)
            })
            .take(4)
            .collect();
        for b in picks {
            let input = b.generate_input(cfg.input_len, 0);
            let dur = |s: SchemeKind| -> f64 {
                fw.run_with(&b.dfa, &input, s).verify.avg_recovery_round_duration()
            };
            let sre = dur(SchemeKind::Sre);
            if sre <= 0.0 {
                continue;
            }
            rows.push((b.name(), dur(SchemeKind::Rr) / sre, dur(SchemeKind::Nf) / sre));
        }
    }
    Fig9Report { rows }
}

impl Fig9Report {
    /// Mean RR and NF ratios.
    pub fn means(&self) -> (f64, f64) {
        (
            mean(&self.rows.iter().map(|r| r.1).collect::<Vec<_>>()),
            mean(&self.rows.iter().map(|r| r.2).collect::<Vec<_>>()),
        )
    }

    /// Paper-style text rendering.
    pub fn render(&self) -> String {
        let header: Vec<String> =
            ["FSM", "RR / SRE", "NF / SRE"].iter().map(|s| s.to_string()).collect();
        let rows: Vec<Vec<String>> =
            self.rows.iter().map(|(n, rr, nf)| vec![n.clone(), f2(*rr), f2(*nf)]).collect();
        let (mrr, mnf) = self.means();
        format!(
            "Figure 9: recovery execution time per chunk, normalized to SRE\n{}\
             mean: RR {} / NF {}\n",
            render_table(&header, &rows),
            f2(mrr),
            f2(mnf),
        )
    }
}

/// Diagnostic: detailed per-phase numbers for one benchmark (not part of the
/// paper; used to understand where cycles go).
pub fn debug_benchmark(cfg: &ExperimentConfig, name: &str) -> String {
    let suite = build_suite(cfg.seed);
    let b = suite
        .iter()
        .find(|b| b.name() == name)
        .unwrap_or_else(|| panic!("unknown benchmark {name}"));
    let input = b.generate_input(cfg.input_len, 0);
    let fw = cfg.framework();
    let mut out = format!(
        "{} tier={} states={} alphabet={}\n",
        b.name(),
        b.tier.name(),
        b.dfa.n_states(),
        b.dfa.alphabet_len()
    );
    let profile = Selector::default().profile(&b.dfa, &input);
    out += &format!(
        "profile: spec1={:.3} spec4={:.3} worst_rank={} spread={:.3} uniq10={:.1}\n",
        profile.spec1_accuracy,
        profile.spec4_accuracy,
        profile.worst_truth_rank,
        profile.accuracy_spread,
        profile.convergence.mean_unique_states
    );
    for s in [SchemeKind::Pm, SchemeKind::Sre, SchemeKind::Rr, SchemeKind::Nf, SchemeKind::Sfa] {
        let o = fw.run_with(&b.dfa, &input, s);
        out += &format!(
            "{:4}: total={:>12} predict={:>8} exec={:>10} verify={:>12} rounds={:>5} \
             checks={:>6} matches={:>6} recovery_runs={:>6} avg_active={:>6.1} \
             acc={:.3}\n",
            s.name(),
            o.total_cycles(),
            o.predict.cycles,
            o.execute.cycles,
            o.verify.cycles,
            o.verify.rounds,
            o.verification_checks,
            o.verification_matches,
            o.recovery_runs(),
            o.avg_active_threads_during_recovery(),
            o.runtime_accuracy(),
        );
    }
    out
}

// ---------------------------------------------------------------------------
// §V-C ablation: frequency-based DFA transformation vs. PM's hash table.
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    /// A configuration small enough for unit testing (the harness defaults
    /// are sized for the full reproduction).
    fn tiny() -> ExperimentConfig {
        ExperimentConfig { seed: 1, input_len: 8 * 1024, n_chunks: 32, ..Default::default() }
    }

    #[test]
    fn fig3_is_monotone_in_k() {
        let r = run_fig3(&tiny());
        assert_eq!(r.ks, vec![1, 4, 6, 8]);
        for (f, v) in &r.per_family {
            assert!((v[0] - 1.0).abs() < 1e-9, "{f}: spec-1 normalizes to 1");
            for w in v.windows(2) {
                assert!(w[0] < w[1], "{f}: redundancy grows with k: {v:?}");
            }
        }
        // Sub-linear in k thanks to shared input loads.
        assert!(r.overall[1] < 4.0, "alpha_4 = {}", r.overall[1]);
    }

    #[test]
    fn table2_shapes() {
        let r = run_table2(&tiny());
        assert_eq!(r.rows.len(), 3);
        let snort = &r.rows[0];
        let poweren = &r.rows[2];
        assert!(snort.states_mean > poweren.states_mean, "Snort DFAs are larger");
        for row in &r.rows {
            assert!(row.spec1_mean <= row.spec4_mean + 1e-12);
            assert!(row.input_sensitive <= 12);
            assert!(row.uniq_mean >= 1.0);
        }
        assert!(!r.render().is_empty());
    }

    #[test]
    fn fig7_has_the_register_cliff() {
        let r = run_fig7(&tiny());
        for (f, v) in &r.per_family {
            // Starving the record window is always worst.
            let worst = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            assert!((v[0] - worst).abs() < 1e-9 || v[0] > 1.1, "{f}: R=8 should hurt: {v:?}");
        }
        let _ = r.best_registers(Family::Snort);
        assert!(!r.render().is_empty());
    }

    #[test]
    fn table3_pm_recovers_sequentially() {
        let r = run_table3(&tiny());
        assert_eq!(r.rows.len(), 12);
        for row in &r.rows {
            let (pm_acc, pm_act) = row.per_scheme[0];
            assert!(pm_acc <= 1.0);
            assert!(pm_act <= 1.0 + 1e-9, "PM recovery is sequential");
            let (_, nf_act) = row.per_scheme[3];
            if row.tier != Tier::SpecKFriendly {
                assert!(nf_act >= pm_act, "NF activates at least as many threads");
            }
        }
        assert!(!r.render().is_empty());
    }

    /// The reproduction's headline shape, pinned in coarse bands: if a code
    /// change moves these, EXPERIMENTS.md needs re-recording.
    #[test]
    fn fig8_headline_bands() {
        let cfg = ExperimentConfig { input_len: 96 * 1024, n_chunks: 64, ..tiny() };
        let r = run_fig8(&cfg);
        // PM wins its tier: every spec-k FSM's best non-PM speedup < 2.
        for row in r.rows.iter().filter(|r| r.tier == Tier::SpecKFriendly) {
            let best_other = r
                .rows
                .iter()
                .find(|x| x.name == row.name)
                .map(|x| {
                    x.speedup(SchemeKind::Sre)
                        .max(x.speedup(SchemeKind::Rr))
                        .max(x.speedup(SchemeKind::Nf))
                })
                .unwrap();
            assert!(best_other < 2.5, "{}: others reached {best_other:.2}", row.name);
        }
        // SRE wins every convergent FSM by a wide margin.
        for row in r.rows.iter().filter(|r| r.tier == Tier::SlowConvergence) {
            assert!(
                row.speedup(SchemeKind::Sre) > 2.0,
                "{}: SRE {:.2}",
                row.name,
                row.speedup(SchemeKind::Sre)
            );
        }
        // Aggressive recovery wins every deep/sensitive FSM.
        for row in
            r.rows.iter().filter(|r| matches!(r.tier, Tier::NonConvergent | Tier::InputSensitive))
        {
            let agg = row.speedup(SchemeKind::Rr).max(row.speedup(SchemeKind::Nf));
            assert!(agg > 1.5, "{}: aggressive best {agg:.2}", row.name);
            assert!(row.speedup(SchemeKind::Sre) < 2.0, "{}", row.name);
        }
        // Headline bands (coarse: the small input compresses ratios).
        let mean = r.selector_mean_speedup();
        assert!((2.0..15.0).contains(&mean), "selector mean {mean:.2}");
        assert!(r.selector_accuracy() > 0.6, "accuracy {:.2}", r.selector_accuracy());
    }

    #[test]
    fn fig9_rows_have_positive_ratios() {
        let r = run_fig9(&tiny());
        assert!(!r.rows.is_empty());
        for (name, rr, nf) in &r.rows {
            assert!(*rr > 0.0 && *nf > 0.0, "{name}");
        }
    }

    #[test]
    fn ablation_transformation_wins() {
        let r = run_ablation(&tiny());
        // 4 benchmarks per family × 3 families × {RR, SFA}.
        assert_eq!(r.rows.len(), 24);
        assert!(r.rows.iter().any(|(_, s, _)| *s == SchemeKind::Sfa));
        assert!(
            r.mean_improvement() > 0.0,
            "the transformation must help: {:.3}",
            r.mean_improvement()
        );
        // SFA multiplies every residency miss by its live-path width, so the
        // transformation must help it too, on average.
        let sfa: Vec<f64> = r
            .rows
            .iter()
            .filter(|(_, s, _)| *s == SchemeKind::Sfa)
            .map(|(_, _, ratio)| ratio - 1.0)
            .collect();
        assert!(mean(&sfa) > 0.0, "transformation must help SFA: {:.3}", mean(&sfa));
    }
}

/// Ablation report: per benchmark and scheme, hashed-layout time over
/// transformed-layout time (>1 means the transformation wins).
#[derive(Clone, Debug)]
pub struct AblationReport {
    /// Rows of `(benchmark name, scheme, hashed/transformed cycle ratio)`.
    pub rows: Vec<(String, SchemeKind, f64)>,
    /// The absolute measurements behind `rows`, in the same order.
    pub details: Vec<AblationDetail>,
}

/// One ablation measurement's absolutes: both layouts' cycle totals and
/// phase profiles for one (benchmark, scheme) pair (the ratio in
/// [`AblationReport::rows`] is `hashed_cycles / transformed_cycles`).
#[derive(Clone, Debug)]
pub struct AblationDetail {
    /// Benchmark name.
    pub name: String,
    /// Scheme measured under both layouts. RR stresses the recovery path;
    /// SFA stresses the transform hardest — its width-many simultaneous
    /// paths multiply every per-transition residency miss.
    pub scheme: SchemeKind,
    /// Total cycles under the transformed (frequency-permuted) layout.
    pub transformed_cycles: u64,
    /// Total cycles under the hashed layout.
    pub hashed_cycles: u64,
    /// Phase profile of the transformed-layout run.
    pub transformed_profile: PhaseProfile,
    /// Phase profile of the hashed-layout run.
    pub hashed_profile: PhaseProfile,
}

/// Runs the same scheme under both table layouts on a cross-family subset.
///
/// Both layouts operate on the *same frequency-permuted machine* with the
/// same hot states, so speculation behaviour is identical and the measured
/// difference isolates exactly what §IV-B changes: the per-transition
/// "is this row cached?" mechanism (one comparison vs. a shared-memory hash
/// probe) and the shared-memory capacity lost to the hash table.
pub fn run_ablation(cfg: &ExperimentConfig) -> AblationReport {
    let suite = build_suite(cfg.seed);
    let mut rows = Vec::new();
    let mut details = Vec::new();
    for family in Family::all() {
        for b in suite.iter().filter(|b| b.family == family).take(4) {
            let input = b.generate_input(cfg.input_len, 0);
            let training_len = ((input.len() as f64 * 0.005) as usize).max(512).min(input.len());
            let freq = FrequencyProfile::collect(&b.dfa, &input[..training_len]);
            let transformed = TransformedDfa::from_profile(&b.dfa, &freq);
            let tdfa = transformed.dfa();
            // Frequency profile in the transformed numbering (rank order).
            let tfreq = FrequencyProfile::collect(tdfa, &input[..training_len]);
            let config = cfg.scheme_config();

            let hot_t =
                DeviceTable::hot_rows_for_device(tdfa, TableLayout::Transformed, &cfg.device);
            let table_t = DeviceTable::transformed(tdfa, hot_t);
            let job_t = Job::new(&cfg.device, &table_t, &input, config).expect("valid");

            let hot_h = DeviceTable::hot_rows_for_device(tdfa, TableLayout::Hashed, &cfg.device);
            let table_h = DeviceTable::hashed(tdfa, &tfreq, hot_h);
            let job_h = Job::new(&cfg.device, &table_h, &input, config).expect("valid");

            for scheme in [SchemeKind::Rr, SchemeKind::Sfa] {
                let out_t = gspecpal::run_scheme(scheme, &job_t);
                let t = out_t.total_cycles();
                let out_h = gspecpal::run_scheme(scheme, &job_h);
                let h = out_h.total_cycles();

                rows.push((b.name(), scheme, h as f64 / t as f64));
                details.push(AblationDetail {
                    name: b.name(),
                    scheme,
                    transformed_cycles: t,
                    hashed_cycles: h,
                    transformed_profile: out_t.phase_profile(),
                    hashed_profile: out_h.phase_profile(),
                });
            }
        }
    }
    AblationReport { rows, details }
}

impl AblationReport {
    /// Mean improvement of the transformation (paper: ~15%).
    pub fn mean_improvement(&self) -> f64 {
        mean(&self.rows.iter().map(|r| r.2 - 1.0).collect::<Vec<_>>())
    }

    /// Paper-style text rendering.
    pub fn render(&self) -> String {
        let header: Vec<String> =
            ["FSM", "scheme", "hashed / transformed"].iter().map(|s| s.to_string()).collect();
        let rows: Vec<Vec<String>> =
            self.rows.iter().map(|(n, s, r)| vec![n.clone(), s.to_string(), f2(*r)]).collect();
        format!(
            "DFA-transformation ablation (§V-C): hashed-layout time over \
             transformed-layout time\n{}\
             mean improvement from the transformation: {}%\n",
            render_table(&header, &rows),
            f2(self.mean_improvement() * 100.0),
        )
    }
}
