//! Minimal CSV serialization for the experiment reports (for plotting the
//! figures with external tools). Hand-rolled: values are numbers and simple
//! identifiers, so quoting only has to handle commas and quotes defensively.

use crate::experiments::{
    AblationReport, Fig3Report, Fig7Report, Fig8Report, Fig9Report, Table2Report, Table3Report,
};
use crate::report::pct;
use gspecpal::SchemeKind;

/// Escapes one CSV field.
fn field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Renders rows of fields as CSV text.
pub fn to_csv(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = header.iter().map(|h| field(h)).collect::<Vec<_>>().join(",");
    out.push('\n');
    for row in rows {
        out.push_str(&row.iter().map(|c| field(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    out
}

impl Fig3Report {
    /// CSV rendering: one row per family, one column per k.
    pub fn to_csv(&self) -> String {
        let header: Vec<String> = std::iter::once("family".to_string())
            .chain(self.ks.iter().map(|k| format!("spec_{k}")))
            .collect();
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let rows: Vec<Vec<String>> = self
            .per_family
            .iter()
            .map(|(f, v)| {
                std::iter::once(f.to_string()).chain(v.iter().map(|x| format!("{x:.4}"))).collect()
            })
            .collect();
        to_csv(&header_refs, &rows)
    }
}

impl Table2Report {
    /// CSV rendering.
    pub fn to_csv(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.family.to_string(),
                    r.states_range.0.to_string(),
                    r.states_range.1.to_string(),
                    format!("{:.0}", r.states_mean),
                    pct(r.spec1_mean),
                    pct(r.spec4_mean),
                    r.input_sensitive.to_string(),
                    format!("{:.2}", r.uniq_mean),
                    format!("{:.3}", r.profiling_seconds),
                ]
            })
            .collect();
        to_csv(
            &[
                "family",
                "states_min",
                "states_max",
                "states_mean",
                "spec1_mean_pct",
                "spec4_mean_pct",
                "input_sensitive",
                "uniq10_mean",
                "profiling_s",
            ],
            &rows,
        )
    }
}

impl Fig7Report {
    /// CSV rendering.
    pub fn to_csv(&self) -> String {
        let header: Vec<String> = std::iter::once("family".to_string())
            .chain(self.registers.iter().map(|r| format!("r{r}")))
            .collect();
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let rows: Vec<Vec<String>> = self
            .per_family
            .iter()
            .map(|(f, v)| {
                std::iter::once(f.to_string()).chain(v.iter().map(|x| format!("{x:.4}"))).collect()
            })
            .collect();
        to_csv(&header_refs, &rows)
    }
}

impl Fig8Report {
    /// CSV rendering: one row per FSM with cycles and speedups.
    pub fn to_csv(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    r.tier.name().to_string(),
                    r.pm.to_string(),
                    r.sre.to_string(),
                    r.rr.to_string(),
                    r.nf.to_string(),
                    r.sfa.to_string(),
                    format!("{:.4}", r.speedup(SchemeKind::Sre)),
                    format!("{:.4}", r.speedup(SchemeKind::Rr)),
                    format!("{:.4}", r.speedup(SchemeKind::Nf)),
                    format!("{:.4}", r.speedup(SchemeKind::Sfa)),
                    r.selected.to_string(),
                    format!("{:.4}", r.selected_speedup()),
                ]
            })
            .collect();
        to_csv(
            &[
                "fsm",
                "tier",
                "pm_cycles",
                "sre_cycles",
                "rr_cycles",
                "nf_cycles",
                "sfa_cycles",
                "sre_speedup",
                "rr_speedup",
                "nf_speedup",
                "sfa_speedup",
                "selected",
                "selected_speedup",
            ],
            &rows,
        )
    }
}

impl Fig8Report {
    /// Phase-level CSV: one row per (FSM, scheme, phase) with the full
    /// counter set — the long-format companion of the `BENCH_fig8.json`
    /// perf report, for plotting phase stacks with external tools.
    pub fn phases_to_csv(&self) -> String {
        let mut rows: Vec<Vec<String>> = Vec::new();
        for r in &self.rows {
            for (scheme, total, profile) in r.scheme_profiles() {
                for (phase, c) in profile.iter() {
                    rows.push(vec![
                        r.name.clone(),
                        scheme.to_string(),
                        total.to_string(),
                        phase.name().to_string(),
                        c.cycles.to_string(),
                        c.rounds.to_string(),
                        c.divergent_rounds.to_string(),
                        c.global_transactions.to_string(),
                        c.shared_accesses.to_string(),
                        format!("{:.4}", c.utilization()),
                        format!("{:.4}", c.coalesced_fraction()),
                    ]);
                }
            }
        }
        to_csv(
            &[
                "fsm",
                "scheme",
                "scheme_cycles",
                "phase",
                "cycles",
                "rounds",
                "divergent_rounds",
                "global_transactions",
                "shared_accesses",
                "utilization",
                "coalesced_fraction",
            ],
            &rows,
        )
    }
}

impl Table3Report {
    /// CSV rendering.
    pub fn to_csv(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                let mut row = vec![r.index.to_string(), r.tier.name().to_string()];
                for (acc, _) in &r.per_scheme {
                    row.push(pct(*acc));
                }
                for (_, act) in &r.per_scheme {
                    row.push(format!("{act:.1}"));
                }
                row
            })
            .collect();
        to_csv(
            &[
                "snort",
                "tier",
                "pm_acc_pct",
                "sre_acc_pct",
                "rr_acc_pct",
                "nf_acc_pct",
                "pm_active",
                "sre_active",
                "rr_active",
                "nf_active",
            ],
            &rows,
        )
    }
}

impl Fig9Report {
    /// CSV rendering.
    pub fn to_csv(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|(n, rr, nf)| vec![n.clone(), format!("{rr:.4}"), format!("{nf:.4}")])
            .collect();
        to_csv(&["fsm", "rr_over_sre", "nf_over_sre"], &rows)
    }
}

impl AblationReport {
    /// CSV rendering.
    pub fn to_csv(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|(n, s, r)| vec![n.clone(), s.to_string(), format!("{r:.4}")])
            .collect();
        to_csv(&["fsm", "scheme", "hashed_over_transformed"], &rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fields_are_escaped() {
        assert_eq!(field("plain"), "plain");
        assert_eq!(field("a,b"), "\"a,b\"");
        assert_eq!(field("q\"q"), "\"q\"\"q\"");
    }

    #[test]
    fn csv_shape() {
        let text =
            to_csv(&["a", "b"], &[vec!["1".into(), "2".into()], vec!["3".into(), "4,5".into()]]);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines, vec!["a,b", "1,2", "3,\"4,5\""]);
    }

    #[test]
    fn fig9_csv_round_trip() {
        let r = Fig9Report { rows: vec![("Snort5".into(), 1.25, 1.10)] };
        let csv = r.to_csv();
        assert!(csv.starts_with("fsm,rr_over_sre,nf_over_sre\n"));
        assert!(csv.contains("Snort5,1.2500,1.1000"));
    }
}
