//! Criterion bench for Figure 8: the four schemes head to head on one
//! representative benchmark of each tier.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gspecpal::schemes::{run_scheme, Job};
use gspecpal::table::DeviceTable;
use gspecpal::{SchemeConfig, SchemeKind};
use gspecpal_gpu::DeviceSpec;
use gspecpal_workloads::{build_suite, Tier};

fn bench_fig8(c: &mut Criterion) {
    let suite = build_suite(1);
    let spec = DeviceSpec::rtx3090();
    let mut group = c.benchmark_group("fig8_schemes");
    group.sample_size(10);
    for tier in
        [Tier::SpecKFriendly, Tier::SlowConvergence, Tier::NonConvergent, Tier::InputSensitive]
    {
        let b = suite.iter().find(|b| b.tier == tier).expect("tier present");
        // Grid scale: 8192 chunks span dozens of occupancy-sized blocks on
        // the RTX 3090 spec, so block simulation spreads across host cores.
        let input = b.generate_input(512 * 1024, 0);
        let table = DeviceTable::transformed(&b.dfa, b.dfa.n_states());
        let config = SchemeConfig { n_chunks: 8192, ..SchemeConfig::default() };
        let job = Job::new(&spec, &table, &input, config).expect("valid job");
        // Report the occupancy shape the grid scheduler actually achieved
        // for this benchmark's kernels.
        let probe = run_scheme(SchemeKind::Nf, &job);
        for (phase, stats) in [("exec", &probe.execute), ("verify", &probe.verify)] {
            if let Some(shape) = stats.shape {
                eprintln!(
                    "fig8 {}: {phase} occupancy {} resident/SM, {} blocks/wave, {} waves",
                    b.name(),
                    shape.resident_per_sm,
                    shape.blocks_per_wave,
                    shape.waves
                );
            }
        }
        for scheme in SchemeKind::gspecpal_schemes() {
            group.bench_with_input(
                BenchmarkId::new(b.name(), scheme.name()),
                &scheme,
                |bench, &scheme| {
                    bench.iter(|| run_scheme(scheme, &job).total_cycles());
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
