//! Criterion bench for Figure 9: the verification-and-recovery phase of the
//! three speculative-recovery schemes under heavy recovery pressure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gspecpal::schemes::{run_scheme, Job};
use gspecpal::table::DeviceTable;
use gspecpal::{SchemeConfig, SchemeKind};
use gspecpal_gpu::DeviceSpec;
use gspecpal_workloads::{build_suite, Family, Tier};

fn bench_fig9(c: &mut Criterion) {
    let suite = build_suite(1);
    let spec = DeviceSpec::rtx3090();
    let mut group = c.benchmark_group("fig9_recovery");
    group.sample_size(10);
    for family in Family::all() {
        let b = suite
            .iter()
            .find(|b| b.family == family && b.tier == Tier::NonConvergent)
            .expect("deep-spec benchmark");
        let input = b.generate_input(32 * 1024, 0);
        let table = DeviceTable::transformed(&b.dfa, b.dfa.n_states());
        let config = SchemeConfig { n_chunks: 64, ..SchemeConfig::default() };
        let job = Job::new(&spec, &table, &input, config).expect("valid job");
        for scheme in [SchemeKind::Sre, SchemeKind::Rr, SchemeKind::Nf] {
            group.bench_with_input(
                BenchmarkId::new(b.name(), scheme.name()),
                &scheme,
                |bench, &scheme| {
                    bench.iter(|| {
                        let o = run_scheme(scheme, &job);
                        (o.verify.cycles, o.verify.avg_recovery_round_duration() as u64)
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
