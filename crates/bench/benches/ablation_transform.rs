//! Criterion bench for the §V-C ablation: the frequency-based DFA
//! transformation (single-comparison hot test) against PM's shared-memory
//! hash table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gspecpal::schemes::{run_scheme, Job};
use gspecpal::table::{DeviceTable, TableLayout};
use gspecpal::{SchemeConfig, SchemeKind};
use gspecpal_fsm::{FrequencyProfile, TransformedDfa};
use gspecpal_gpu::DeviceSpec;
use gspecpal_workloads::{build_suite, Tier};

fn bench_ablation(c: &mut Criterion) {
    let suite = build_suite(1);
    let spec = DeviceSpec::rtx3090();
    let b = suite.iter().find(|b| b.tier == Tier::NonConvergent).expect("deep-spec benchmark");
    let input = b.generate_input(32 * 1024, 0);
    let training = &input[..2048];
    let profile = FrequencyProfile::collect(&b.dfa, training);
    let transformed = TransformedDfa::from_profile(&b.dfa, &profile);
    let config = SchemeConfig { n_chunks: 64, ..SchemeConfig::default() };

    let mut group = c.benchmark_group("ablation_transform");
    group.sample_size(10);

    let hot_t =
        DeviceTable::hot_rows_for_device(transformed.dfa(), TableLayout::Transformed, &spec);
    let table_t = DeviceTable::transformed(transformed.dfa(), hot_t);
    let job_t = Job::new(&spec, &table_t, &input, config).expect("valid");
    group.bench_with_input(BenchmarkId::new(b.name(), "transformed"), &job_t, |bench, job| {
        bench.iter(|| run_scheme(SchemeKind::Rr, job).total_cycles());
    });

    let hot_h = DeviceTable::hot_rows_for_device(&b.dfa, TableLayout::Hashed, &spec);
    let table_h = DeviceTable::hashed(&b.dfa, &profile, hot_h);
    let job_h = Job::new(&spec, &table_h, &input, config).expect("valid");
    group.bench_with_input(BenchmarkId::new(b.name(), "hashed"), &job_h, |bench, job| {
        bench.iter(|| run_scheme(SchemeKind::Rr, job).total_cycles());
    });

    // The two layouts claim different shared-memory footprints, which the
    // occupancy calculator turns into different resident-block shapes.
    for (name, job) in [("transformed", &job_t), ("hashed", &job_h)] {
        if let Some(shape) = run_scheme(SchemeKind::Rr, job).verify.shape {
            eprintln!(
                "ablation {name}: verify occupancy {} resident/SM, {} blocks/wave, {} waves",
                shape.resident_per_sm, shape.blocks_per_wave, shape.waves
            );
        }
    }

    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
