//! Criterion bench for Figure 7: RR sensitivity to the `VR_others` register
//! budget.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gspecpal::schemes::{run_scheme, Job};
use gspecpal::table::DeviceTable;
use gspecpal::{SchemeConfig, SchemeKind};
use gspecpal_gpu::DeviceSpec;
use gspecpal_workloads::{build_suite, Tier};

fn bench_fig7(c: &mut Criterion) {
    let suite = build_suite(1);
    let spec = DeviceSpec::rtx3090();
    let b = suite
        .iter()
        .find(|b| b.tier == Tier::NonConvergent)
        .expect("suite has deep-spec benchmarks");
    let input = b.generate_input(32 * 1024, 0);
    let table = DeviceTable::transformed(&b.dfa, b.dfa.n_states());

    let mut group = c.benchmark_group("fig7_registers");
    group.sample_size(10);
    for registers in [8usize, 16, 24] {
        let config = SchemeConfig {
            n_chunks: 64,
            vr_others_registers: registers,
            ..SchemeConfig::default()
        };
        let job = Job::new(&spec, &table, &input, config).expect("valid job");
        group.bench_with_input(
            BenchmarkId::new(b.name(), format!("R={registers}")),
            &job,
            |bench, job| {
                bench.iter(|| run_scheme(SchemeKind::Rr, job).total_cycles());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
