//! Criterion bench for Figure 3: speculative execution with k paths.
//!
//! Host wall time is proportional to simulated work, so the α_k redundancy
//! factor shows directly in these measurements; the harness binary
//! (`figures -- fig3`) reports the simulated-cycle version.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gspecpal::schemes::{exec_phase, Job};
use gspecpal::table::DeviceTable;
use gspecpal::SchemeConfig;
use gspecpal_gpu::DeviceSpec;
use gspecpal_workloads::{build_suite, Family};

fn bench_fig3(c: &mut Criterion) {
    let suite = build_suite(1);
    let spec = DeviceSpec::rtx3090();
    let mut group = c.benchmark_group("fig3_speck");
    group.sample_size(10);
    for family in Family::all() {
        let b = suite
            .iter()
            .find(|b| b.family == family && b.tier == gspecpal_workloads::Tier::NonConvergent)
            .expect("every family has a deep-spec benchmark");
        let input = b.generate_input(32 * 1024, 0);
        let table = DeviceTable::transformed(&b.dfa, b.dfa.n_states());
        let config = SchemeConfig { n_chunks: 64, ..SchemeConfig::default() };
        let job = Job::new(&spec, &table, &input, config).expect("valid job");
        for k in [1usize, 4, 6, 8] {
            group.bench_with_input(
                BenchmarkId::new(b.name(), format!("spec-{k}")),
                &k,
                |bench, &k| {
                    bench.iter(|| exec_phase(&job, k).exec_stats.cycles);
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
