//! Tour of the 36-FSM benchmark suite: for every machine, print its
//! characteristics, what the decision tree picks, and why.
//!
//! ```text
//! cargo run --release --example benchmark_tour [-- <input KiB, default 64>]
//! ```

use gspecpal::Selector;
use gspecpal_workloads::build_suite;

fn main() {
    let kib: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(64);
    let suite = build_suite(1);
    let selector = Selector::default();

    println!(
        "{:<10} {:<10} {:>7} {:>8} {:>8} {:>8} {:>7}  {:<4}",
        "FSM", "tier", "states", "spec-1%", "spec-4%", "uniq10", "spread%", "pick"
    );
    for b in &suite {
        let input = b.generate_input(kib * 1024, 0);
        let p = selector.profile(&b.dfa, &input);
        let (scheme, _reason) = selector.select_explained(&p);
        println!(
            "{:<10} {:<10} {:>7} {:>8.1} {:>8.1} {:>8.1} {:>7.1}  {:<4}",
            b.name(),
            b.tier.name(),
            b.dfa.n_states(),
            p.spec1_accuracy * 100.0,
            p.spec4_accuracy * 100.0,
            p.convergence.mean_unique_states,
            p.accuracy_spread * 100.0,
            scheme.name(),
        );
    }

    // Show one full explanation per distinct pick.
    println!("\nexample explanations:");
    let mut seen = std::collections::HashSet::new();
    for b in &suite {
        let input = b.generate_input(kib * 1024, 0);
        let p = selector.profile(&b.dfa, &input);
        let (scheme, reason) = selector.select_explained(&p);
        if seen.insert(scheme) {
            println!("  {:<10} -> {:<4} because {}", b.name(), scheme.name(), reason);
        }
    }
}
