//! A tiny grep built on the whole stack: compile user regexes, scan a file
//! (or synthetic text) with GSpecPal, and count matches.
//!
//! ```text
//! cargo run --release --example regex_grep -- "err(or)?" [FILE]
//! ```
//!
//! Without a file argument it scans a generated pattern-dense text stream.

use gspecpal::{GSpecPal, SchemeConfig, SchemeKind};
use gspecpal_gpu::DeviceSpec;
use gspecpal_regex::{compile, CompileConfig};
use gspecpal_workloads::inputs::pattern_text;

fn main() {
    let mut args = std::env::args().skip(1);
    let pattern = args.next().unwrap_or_else(|| "err(or)?s?".to_string());
    let data = match args.next() {
        Some(path) => std::fs::read(&path).unwrap_or_else(|e| panic!("read {path}: {e}")),
        None => pattern_text(42, 256 * 1024, &[b"errors".to_vec(), b"warn".to_vec()]),
    };

    let dfa = match compile(&pattern, CompileConfig::default()) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("bad pattern: {e}");
            std::process::exit(2);
        }
    };
    println!("pattern {pattern:?} -> DFA with {} states", dfa.n_states());

    // Host ground truth: positions where a match ends.
    let expected = dfa.count_matches(&data);

    // Device scan through the framework.
    let device = DeviceSpec::rtx3090();
    let fw = GSpecPal::new(device.clone())
        .with_config(SchemeConfig { n_chunks: 256, ..SchemeConfig::default() });
    let report = fw.process(&dfa, &data);
    let seq = fw.run_with(&dfa, &data, SchemeKind::Sequential);
    assert_eq!(report.end_state(), seq.end_state);

    println!(
        "{} match end-positions in {} KiB; scanned with {} in {:.1} µs \
         (sequential {:.1} µs, {:.1}x)",
        expected,
        data.len() / 1024,
        report.selected,
        report.outcome.total_us(&device),
        seq.total_us(&device),
        seq.total_cycles() as f64 / report.outcome.total_cycles() as f64,
    );
}
