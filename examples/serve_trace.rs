//! Serving a stream trace: drive the `gspecpal-serve` pipeline over a
//! synthetic arrival trace and compare the three batching policies, with
//! and without copy/compute overlap.
//!
//! ```text
//! cargo run --release --example serve_trace [-- <streams, default 32>]
//! ```

use gspecpal_fsm::examples::div7;
use gspecpal_gpu::{DeviceSpec, Phase};
use gspecpal_serve::{serve, BatchPolicy, ServeConfig, ServeMachine, Trace};

fn main() {
    let n_streams: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(32);
    let spec = DeviceSpec::rtx3090();
    let dfa = div7();
    let machine = ServeMachine::prepare(&spec, &dfa, &b"110100".repeat(256));

    // A bursty synthetic trace: one machine, mean inter-arrival gap of 200
    // cycles, stream lengths between 256 B and 4 KiB.
    let trace = Trace::synthetic(42, n_streams, 1, 200, 256..4096, b"01");
    println!("trace: {} streams, {} bytes total\n", trace.len(), trace.total_bytes());

    println!(
        "{:<9} {:<8} {:>10} {:>8} {:>9} {:>9} {:>8} {:>7} {:>6}",
        "policy", "overlap", "makespan", "batches", "p50", "p99", "B/cycle", "xfer%", "hide‰"
    );
    for policy in [
        BatchPolicy::Fifo { batch: 8 },
        BatchPolicy::Deadline { batch: 8, max_wait: 2048 },
        BatchPolicy::Adaptive { max_batch: 32 },
    ] {
        for overlap in [true, false] {
            let cfg = ServeConfig { policy, overlap, ..ServeConfig::default() };
            let report = serve(&spec, std::slice::from_ref(&machine), &trace, &cfg).unwrap();
            let transfer = report.stats.profile.get(Phase::Transfer).cycles;
            println!(
                "{:<9} {:<8} {:>10} {:>8} {:>9} {:>9} {:>8.4} {:>6.1}% {:>6}",
                report.policy,
                report.overlap,
                report.makespan_cycles,
                report.batches.len(),
                report.delivery.p50,
                report.delivery.p99,
                report.bytes_per_cycle(),
                100.0 * transfer as f64 / report.stats.cycles as f64,
                report.overlap_efficiency_permille,
            );
        }
    }

    // Show the copy/kernel interleaving of the first few FIFO batches.
    let cfg = ServeConfig { policy: BatchPolicy::Fifo { batch: 8 }, ..ServeConfig::default() };
    let report = serve(&spec, &[machine], &trace, &cfg).unwrap();
    println!("\nfifo timeline (first 6 batches, overlap on):");
    println!("{:<6} {:>8} {:>18} {:>22} {:>18}  mode", "batch", "streams", "h2d", "compute", "d2h");
    for (i, b) in report.batches.iter().take(6).enumerate() {
        println!(
            "{:<6} {:>8} {:>8}..{:<8} {:>10}..{:<10} {:>8}..{:<8}  {}",
            i,
            b.streams,
            b.h2d.start,
            b.h2d.end,
            b.compute.start,
            b.compute.end,
            b.d2h.start,
            b.d2h.end,
            b.mode.name(),
        );
    }
    println!(
        "\npeak queue depth {}, backpressure events {}, {}‰ of copy cycles hidden under kernels",
        report.peak_queue_depth(),
        report.backpressure_events,
        report.overlap_efficiency_permille,
    );
}
