//! A textual re-enactment of the paper's Figure 2: Parallel Merge running
//! *div7* with two speculative paths per thread, showing the per-chunk
//! paths, which speculations matched, and where the delayed sequential
//! recovery had to step in.
//!
//! ```text
//! cargo run --release --example fig2_walkthrough
//! ```

use gspecpal::partition::partition;
use gspecpal::predict::predict;
use gspecpal::schemes::{run_scheme, Job};
use gspecpal::table::DeviceTable;
use gspecpal::{SchemeConfig, SchemeKind};
use gspecpal_fsm::examples::div7;
use gspecpal_fsm::render::to_table;
use gspecpal_gpu::DeviceSpec;

fn main() {
    let d = div7();
    println!("div7 transition table (Figure 1(b)):\n{}", to_table(&d, 10));

    // A short bit stream split into 8 chunks, like Fig 2's row of chunks.
    let input: Vec<u8> = b"110100111010101101001110".repeat(4);
    let n = 8usize;
    let chunks = partition(input.len(), n);
    let spec = DeviceSpec::rtx3090();

    // Phase 1: all-state lookback-2 prediction (§IV-A).
    let pred = predict(&d, &input, &chunks, 2, &spec);
    println!("speculation queues (top-2 of each, as in Fig 2's spec-2):");
    for (i, q) in pred.queues.iter().enumerate() {
        let top: Vec<String> = q.candidates().take(2).map(|s| format!("s{s}")).collect();
        println!("  chunk {i}: QS = [{}] ({} candidates)", top.join(", "), q.initial_len());
    }

    // Phase 2+3: run PM with spec-2 and narrate the result.
    let table = DeviceTable::transformed(&d, d.n_states());
    let config = SchemeConfig { n_chunks: n, spec_k: 2, ..SchemeConfig::default() };
    let job = Job::new(&spec, &table, &input, config).expect("valid");
    let out = run_scheme(SchemeKind::Pm, &job);

    println!("\nper-chunk speculative paths (start -> end over the chunk):");
    let mut truth = d.start();
    for (i, range) in chunks.iter().enumerate() {
        let piece = &input[range.clone()];
        let starts: Vec<_> = pred.queues[i].candidates().take(2).collect();
        let paths: Vec<String> =
            starts.iter().map(|&s0| format!("s{s0}->s{}", d.run_from(s0, piece))).collect();
        let new_truth = d.run_from(truth, piece);
        let covered = starts.contains(&truth);
        println!(
            "  chunk {i}: {}  | truth s{truth}->s{new_truth}  {}",
            paths.join("  "),
            if i == 0 {
                "(certain)".to_string()
            } else if covered {
                "MATCH".to_string()
            } else {
                "miss -> delayed recovery".to_string()
            }
        );
        truth = new_truth;
    }

    println!(
        "\nPM(spec-2): {} of {} chunks verified from speculation, {} sequential \
         recoveries, {} total cycles",
        out.verification_matches,
        n - 1,
        out.recovery_runs(),
        out.total_cycles()
    );
    println!(
        "verified end state: s{} ({})",
        out.end_state,
        if out.accepted { "divisible by 7" } else { "not divisible by 7" }
    );
    assert_eq!(out.end_state, d.run(&input));
}
