//! Network intrusion detection: the paper's Snort scenario.
//!
//! Compiles a disjunction of Snort-style rules to a DFA with the bundled
//! regex compiler (the paper uses RE2), generates a synthetic network trace,
//! and scans it with GSpecPal — reporting detections, the selected scheme,
//! and simulated GPU timing versus the sequential baseline.
//!
//! ```text
//! cargo run --release --example intrusion_detection
//! ```

use gspecpal::{GSpecPal, SchemeConfig, SchemeKind};
use gspecpal_gpu::DeviceSpec;
use gspecpal_regex::{compile_set, CompileConfig};
use gspecpal_workloads::inputs::network_trace;

fn main() {
    // A small Snort-like rule set: literal tokens, paths, and patterns.
    let rules = [
        "attack",
        "cmd\\.exe",
        "GET /admin",
        "exploit[0-9]+",
        "union select",
        "/etc/passwd",
        "shellcode",
    ];
    let dfa = compile_set(&rules, CompileConfig { case_insensitive: true, ..Default::default() })
        .expect("rules compile");
    println!(
        "compiled {} rules into a DFA with {} states ({} byte classes)",
        rules.len(),
        dfa.n_states(),
        dfa.alphabet_len()
    );

    // Synthetic traffic with occasional rule hits.
    let spice: Vec<Vec<u8>> =
        [&b"attack"[..], b"GET /admin", b"exploit42"].iter().map(|s| s.to_vec()).collect();
    let trace = network_trace(0xC0FFEE, 512 * 1024, &spice);

    // Ground-truth detections (host scan).
    let detections = dfa.count_matches(&trace);
    println!("trace: {} KiB, {} rule matches", trace.len() / 1024, detections);

    let device = DeviceSpec::rtx3090();
    let framework = GSpecPal::new(device.clone())
        .with_config(SchemeConfig { n_chunks: 256, ..SchemeConfig::default() });
    let report = framework.process(&dfa, &trace);
    let seq = framework.run_with(&dfa, &trace, SchemeKind::Sequential);
    assert_eq!(report.end_state(), seq.end_state, "speculative scan must be exact");

    println!(
        "GSpecPal picked {} (spec-1 {:.0}%, spec-4 {:.0}%, converges: {})",
        report.selected,
        report.profile.spec1_accuracy * 100.0,
        report.profile.spec4_accuracy * 100.0,
        report.profile.convergence.converges_strongly(dfa.n_states()),
    );
    println!(
        "scan time: {:.1} µs vs sequential {:.1} µs — {:.1}x faster, \
         speculation accuracy {:.1}%",
        report.outcome.total_us(&device),
        seq.total_us(&device),
        seq.total_cycles() as f64 / report.outcome.total_cycles() as f64,
        report.outcome.runtime_accuracy() * 100.0,
    );
    println!(
        "final state {} ({}alert state)",
        report.end_state(),
        if report.accepted() { "" } else { "not an " }
    );
}
