//! Scheme explorer: sweep schemes × chunk counts × spec-k on one benchmark.
//!
//! Useful for building intuition about the §III-C cost model: how the chunk
//! count moves the verification floor, and how spec-k trades redundant
//! execution (α_k, Fig 3) against recovery probability.
//!
//! ```text
//! cargo run --release --example scheme_explorer [-- <FSM name, e.g. Snort6>]
//! ```

use gspecpal::{GSpecPal, SchemeConfig, SchemeKind};
use gspecpal_gpu::DeviceSpec;
use gspecpal_workloads::build_suite;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "Snort6".to_string());
    let suite = build_suite(1);
    let bench = suite
        .iter()
        .find(|b| b.name() == name)
        .unwrap_or_else(|| panic!("unknown FSM {name}; try Snort1..PowerEN12"));
    let input = bench.generate_input(256 * 1024, 0);
    println!(
        "{} — tier {}, {} states, input {} KiB\n",
        bench.name(),
        bench.tier.name(),
        bench.dfa.n_states(),
        input.len() / 1024
    );

    let device = DeviceSpec::rtx3090();

    // Sweep 1: chunk count (threads) per scheme.
    println!("total cycles by chunk count:");
    println!("{:<8} {:>12} {:>12} {:>12} {:>12}", "N", "PM", "SRE", "RR", "NF");
    for n_chunks in [64usize, 128, 256, 512] {
        let fw = GSpecPal::new(device.clone())
            .with_config(SchemeConfig { n_chunks, ..SchemeConfig::default() });
        let cycles = |s| fw.run_with(&bench.dfa, &input, s).total_cycles();
        println!(
            "{:<8} {:>12} {:>12} {:>12} {:>12}",
            n_chunks,
            cycles(SchemeKind::Pm),
            cycles(SchemeKind::Sre),
            cycles(SchemeKind::Rr),
            cycles(SchemeKind::Nf)
        );
    }

    // Sweep 2: spec-k for PM (the Fig 3 trade-off, with recovery included).
    println!("\nPM total cycles by k (redundancy vs. coverage):");
    println!("{:<8} {:>12} {:>10}", "k", "cycles", "accuracy%");
    for k in [1usize, 2, 4, 6, 8] {
        let fw = GSpecPal::new(device.clone())
            .with_config(SchemeConfig { spec_k: k, ..SchemeConfig::default() });
        let o = fw.run_with(&bench.dfa, &input, SchemeKind::Pm);
        println!("{:<8} {:>12} {:>10.1}", k, o.total_cycles(), o.runtime_accuracy() * 100.0);
    }

    // Sweep 3: the Fig 7 register budget for RR.
    println!("\nRR total cycles by VR_others register budget:");
    println!("{:<8} {:>12}", "R", "cycles");
    for r in [4usize, 8, 12, 16, 20, 24] {
        let fw = GSpecPal::new(device.clone())
            .with_config(SchemeConfig { vr_others_registers: r, ..SchemeConfig::default() });
        let o = fw.run_with(&bench.dfa, &input, SchemeKind::Rr);
        println!("{:<8} {:>12}", r, o.total_cycles());
    }
}
