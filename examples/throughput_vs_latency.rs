//! The paper's §II-B motivation, interactive: compare stream-level
//! parallelism (the classic throughput-oriented GPU FSM engine), the device
//! NFA engine (state-level parallelism), and GSpecPal's chunk-level
//! speculation on the same rule set.
//!
//! ```text
//! cargo run --release --example throughput_vs_latency
//! ```

use gspecpal::nfa_engine::run_nfa_device;
use gspecpal::schemes::{run_scheme, Job};
use gspecpal::table::{DeviceTable, TableLayout};
use gspecpal::throughput::run_stream_parallel;
use gspecpal::{SchemeConfig, SchemeKind};
use gspecpal_fsm::{FrequencyProfile, TransformedDfa};
use gspecpal_gpu::DeviceSpec;
use gspecpal_regex::thompson::ThompsonCompiler;
use gspecpal_regex::{compile_set, parse, CompileConfig};
use gspecpal_workloads::inputs::network_trace;

fn main() {
    let rules = ["attack", "exploit[0-9]+", "GET /admin", "over(flow|run)"];
    let dfa = compile_set(&rules, CompileConfig::default()).expect("rules compile");
    let asts: Vec<_> = rules.iter().map(|r| parse(r).expect("valid")).collect();
    let nfa = ThompsonCompiler::new().compile(&asts, true);

    let stream = network_trace(7, 128 * 1024, &[b"attack".to_vec()]);
    let device = DeviceSpec::rtx3090();

    // Shared table setup (frequency-transformed, shared-memory resident).
    let freq = FrequencyProfile::collect(&dfa, &stream[..2048]);
    let transformed = TransformedDfa::from_profile(&dfa, &freq);
    let hot =
        DeviceTable::hot_rows_for_device(transformed.dfa(), TableLayout::Transformed, &device);
    let table = DeviceTable::transformed(transformed.dfa(), hot);

    println!(
        "rule set: {} rules -> NFA {} states / DFA {} states; stream {} KiB\n",
        rules.len(),
        nfa.n_states(),
        dfa.n_states(),
        stream.len() / 1024
    );

    // 1. Stream-level parallelism: 256 copies of the stream, 1 thread each.
    let copies: Vec<&[u8]> = (0..256).map(|_| stream.as_slice()).collect();
    let batch = run_stream_parallel(&device, &table, &copies);
    println!(
        "stream-parallel (256 streams): {:>10} cycles | agg. {:.2} B/cy | \
         per-stream response {:>10} cycles",
        batch.stats.cycles,
        batch.bytes_per_cycle(),
        batch.response_cycles()
    );

    // 2. Device NFA engine on one stream.
    let nfa_out = run_nfa_device(&device, &nfa, &stream, 32);
    println!(
        "NFA engine (1 stream, 32 thr):  {:>10} cycles | avg active set {:.1}",
        nfa_out.stats.cycles, nfa_out.avg_active_states
    );

    // 3. GSpecPal chunk-level speculation on one stream.
    let config = SchemeConfig { n_chunks: 256, ..SchemeConfig::default() };
    let job = Job::new(&device, &table, &stream, config).expect("valid");
    let seq = run_scheme(SchemeKind::Sequential, &job);
    let nf = run_scheme(SchemeKind::Nf, &job);
    assert_eq!(nf.end_state, seq.end_state);
    println!("DFA sequential (1 stream):      {:>10} cycles", seq.total_cycles());
    println!(
        "GSpecPal NF (1 stream):         {:>10} cycles | {:.1}x faster response \
         than a stream-parallel thread",
        nf.total_cycles(),
        batch.response_cycles() as f64 / nf.total_cycles() as f64
    );
}
