//! Virus scanning: the paper's ClamAV scenario.
//!
//! Builds hex byte-string signatures (ClamAV style, including `??`-like skip
//! bytes), compiles them to one DFA, and scans an executable-like binary
//! blob with every GSpecPal scheme, comparing their costs on the simulated
//! GPU.
//!
//! ```text
//! cargo run --release --example virus_scan
//! ```

use gspecpal::{GSpecPal, SchemeConfig, SchemeKind};
use gspecpal_gpu::DeviceSpec;
use gspecpal_regex::{compile_set, CompileConfig};
use gspecpal_workloads::inputs::executable_blob;

fn main() {
    // Hex signatures with a skip byte, like ClamAV's `aa bb ?? cc`.
    let signatures = [
        r"\x4d\x5a\x90\x00\x03",  // MZ header fragment
        r"\xde\xad\xbe\xef",      // classic marker
        r"\x55\x8b\xec.\x83\xec", // prologue with one skip byte
        r"\xe8....\xc3",          // call rel32; ret
        r"\x90\x90\x90\x90\x90",  // NOP sled
    ];
    let dfa = compile_set(&signatures, CompileConfig::default()).expect("signatures compile");
    println!("compiled {} signatures into a DFA with {} states", signatures.len(), dfa.n_states());

    // An executable-like stream with a few planted signatures.
    let planted: Vec<Vec<u8>> =
        vec![b"\xde\xad\xbe\xef".to_vec(), b"\x90\x90\x90\x90\x90".to_vec()];
    let blob = executable_blob(0xBEEF, 256 * 1024, &planted);
    println!(
        "scanning a {} KiB binary: {} signature hits (ground truth)",
        blob.len() / 1024,
        dfa.count_matches(&blob)
    );

    let device = DeviceSpec::rtx3090();
    let framework = GSpecPal::new(device.clone())
        .with_config(SchemeConfig { n_chunks: 256, ..SchemeConfig::default() });

    // Compare every scheme head to head.
    let seq = framework.run_with(&dfa, &blob, SchemeKind::Sequential);
    println!("\n{:<6} {:>12} {:>10} {:>10} {:>8}", "scheme", "cycles", "µs", "speedup", "acc%");
    println!(
        "{:<6} {:>12} {:>10.1} {:>10} {:>8}",
        "Seq",
        seq.total_cycles(),
        seq.total_us(&device),
        "1.0",
        "-"
    );
    for scheme in SchemeKind::gspecpal_schemes() {
        let o = framework.run_with(&dfa, &blob, scheme);
        assert_eq!(o.end_state, seq.end_state, "{scheme} must be exact");
        println!(
            "{:<6} {:>12} {:>10.1} {:>10.1} {:>8.1}",
            o.scheme.name(),
            o.total_cycles(),
            o.total_us(&device),
            seq.total_cycles() as f64 / o.total_cycles() as f64,
            o.runtime_accuracy() * 100.0,
        );
    }

    let report = framework.process(&dfa, &blob);
    println!("\nselector picked: {}", report.selected);
}
