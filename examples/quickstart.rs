//! Quickstart: the paper's Figure 1 example, end to end.
//!
//! Builds *div7* (accepts binary numbers divisible by 7), runs it through
//! the GSpecPal framework on the simulated RTX 3090, and shows the scheme
//! the selector picked, the verified answer, and the speedup over a
//! sequential device run.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gspecpal::{GSpecPal, SchemeConfig, SchemeKind};
use gspecpal_fsm::examples::div7;
use gspecpal_gpu::DeviceSpec;

fn main() {
    let dfa = div7();
    println!("FSM: div7 — {} states, alphabet {} classes", dfa.n_states(), dfa.alphabet_len());

    // A large binary number: pseudo-random bits, deterministic.
    let mut x = 0x2545F4914F6CDD1Du64;
    let input: Vec<u8> = (0..512 * 1024)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if x & 1 == 1 {
                b'1'
            } else {
                b'0'
            }
        })
        .collect();

    let device = DeviceSpec::rtx3090();
    let framework = GSpecPal::new(device.clone())
        .with_config(SchemeConfig { n_chunks: 256, ..SchemeConfig::default() });

    // Let the decision tree pick a scheme and run it.
    let report = framework.process(&dfa, &input);
    println!(
        "selector profile: spec-1 {:.1}%, spec-4 {:.1}%, 10-step unique states {:.1}",
        report.profile.spec1_accuracy * 100.0,
        report.profile.spec4_accuracy * 100.0,
        report.profile.convergence.mean_unique_states,
    );
    println!("selected scheme: {} — {}", report.selected, report.reason);
    println!(
        "divisible by 7? {} (end state s{})",
        if report.accepted() { "yes" } else { "no" },
        report.end_state()
    );

    // Compare against the sequential reference on the same device.
    let seq = framework.run_with(&dfa, &input, SchemeKind::Sequential);
    assert_eq!(seq.end_state, report.end_state(), "speculation must be exact");
    println!(
        "simulated kernel time: {:.1} µs (sequential: {:.1} µs, {:.1}x speedup)",
        report.outcome.total_us(&device),
        seq.total_us(&device),
        seq.total_cycles() as f64 / report.outcome.total_cycles() as f64,
    );
    println!(
        "runtime speculation accuracy: {:.1}%, avg threads active in recovery: {:.1}",
        report.outcome.runtime_accuracy() * 100.0,
        report.outcome.avg_active_threads_during_recovery(),
    );
}
