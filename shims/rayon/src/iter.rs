//! The parallel-iterator facade: `into_par_iter().map(f).collect()`.

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// The produced iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecParIter<T>;
    fn into_par_iter(self) -> VecParIter<T> {
        VecParIter { items: self }
    }
}

/// A parallel iterator: a source plus a (possibly mapped) pipeline.
pub trait ParallelIterator: Sized {
    /// Element type produced by the pipeline.
    type Item: Send;

    /// Applies `f` to every element, in parallel.
    fn map<U: Send, F: Fn(Self::Item) -> U + Sync>(self, f: F) -> MapParIter<Self, F> {
        MapParIter { inner: self, f }
    }

    /// Runs the pipeline; implementation detail behind [`collect`].
    ///
    /// [`collect`]: ParallelIterator::collect
    fn run(self) -> Vec<Self::Item>;

    /// Runs the pipeline and gathers results in input order.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_ordered_vec(self.run())
    }
}

/// Parallel iterator over an owned `Vec`.
pub struct VecParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for VecParIter<T> {
    type Item = T;
    fn run(self) -> Vec<T> {
        self.items
    }
}

/// Result of [`ParallelIterator::map`].
pub struct MapParIter<I, F> {
    inner: I,
    f: F,
}

impl<I, U, F> ParallelIterator for MapParIter<I, F>
where
    I: ParallelIterator,
    U: Send,
    F: Fn(I::Item) -> U + Sync,
{
    type Item = U;
    fn run(self) -> Vec<U> {
        crate::par_map(self.inner.run(), self.f)
    }
}

/// Collection types buildable from an ordered parallel result.
pub trait FromParallelIterator<T> {
    /// Builds the collection from results already in input order.
    fn from_ordered_vec(v: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered_vec(v: Vec<T>) -> Self {
        v
    }
}
