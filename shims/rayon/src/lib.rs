//! Offline stand-in for the subset of the `rayon` API this workspace uses.
//!
//! Provides `Vec::into_par_iter().map(f).collect::<Vec<_>>()` plus
//! [`ThreadPoolBuilder`]/[`ThreadPool::install`] and
//! [`current_num_threads`]. The execution engine is a scoped worker pool
//! over an atomic work index: results land in their input slot, so output
//! order — and therefore everything a caller derives from it — is identical
//! for every worker count. `RAYON_NUM_THREADS` is honoured like upstream.

#![warn(missing_docs)]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod iter;

/// Re-exports for `use rayon::prelude::*;`.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, ParallelIterator};
}

thread_local! {
    static POOL_SIZE: Cell<Option<usize>> = const { Cell::new(None) };
}

fn default_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Number of worker threads parallel operations will currently use.
pub fn current_num_threads() -> usize {
    POOL_SIZE.with(|p| p.get()).unwrap_or_else(default_num_threads)
}

/// Builds a [`ThreadPool`] with a chosen worker count.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

/// Error building a pool (this shim never fails; kept for API parity).
#[derive(Debug)]
pub struct ThreadPoolBuildError {
    _private: (),
}

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// Starts a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count (0 means "default", like upstream).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = match self.num_threads {
            Some(0) | None => default_num_threads(),
            Some(n) => n,
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A worker pool. In this shim a pool owns no persistent threads — workers
/// are scoped per operation — so a pool is just its configured width.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool as the ambient parallel executor.
    pub fn install<R, F: FnOnce() -> R>(&self, op: F) -> R {
        POOL_SIZE.with(|p| {
            let previous = p.replace(Some(self.num_threads));
            let result = op();
            p.set(previous);
            result
        })
    }

    /// This pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Order-preserving parallel map: the engine behind the iterator facade.
pub(crate) fn par_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let workers = current_num_threads().clamp(1, n.max(1));
    if workers <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let out: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i].lock().unwrap().take().expect("each slot taken once");
                let value = f(item);
                *out[i].lock().unwrap() = Some(value);
            });
        }
    });
    out.into_iter().map(|m| m.into_inner().unwrap().expect("every slot filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_preserves_order_for_any_worker_count() {
        let input: Vec<usize> = (0..257).collect();
        let expect: Vec<usize> = input.iter().map(|x| x * 3).collect();
        for workers in [1, 2, 7] {
            let pool = ThreadPoolBuilder::new().num_threads(workers).build().unwrap();
            let got: Vec<usize> =
                pool.install(|| input.clone().into_par_iter().map(|x| x * 3).collect());
            assert_eq!(got, expect, "workers = {workers}");
        }
    }

    #[test]
    fn install_scopes_the_pool_width() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let outside = current_num_threads();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
        assert_eq!(current_num_threads(), outside);
    }
}
