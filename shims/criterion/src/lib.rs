//! Offline stand-in for the subset of the `criterion` API this workspace
//! uses.
//!
//! The build environment has no crates.io access, so this local crate keeps
//! the `harness = false` bench targets compiling and running. It measures
//! with `std::time::Instant` and prints mean wall-clock per iteration — no
//! statistics, plots, or baselines, but enough to compare configurations by
//! eye (which is all the figures harness asks of `cargo bench`).

#![warn(missing_docs)]

use std::time::Instant;

/// Entry point handed to every benchmark function.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into(), sample_size: 10 }
    }
}

/// A named group; benchmarks report as `group/function/parameter`.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f`, passing it `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher { samples: self.sample_size, total_iters: 0, elapsed_ns: 0 };
        f(&mut bencher, input);
        self.report(&id, &bencher);
        self
    }

    /// Benchmarks `f` with no input parameter.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { samples: self.sample_size, total_iters: 0, elapsed_ns: 0 };
        f(&mut bencher);
        self.report(&id.into(), &bencher);
        self
    }

    /// Ends the group (prints nothing; reports are per-benchmark).
    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        let mean =
            if b.total_iters == 0 { 0.0 } else { b.elapsed_ns as f64 / b.total_iters as f64 };
        println!(
            "{}/{}: {:.3} ms/iter ({} iters)",
            self.name,
            id.label(),
            mean / 1.0e6,
            b.total_iters,
        );
    }
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { function: function.to_string(), parameter: Some(parameter.to_string()) }
    }

    fn label(&self) -> String {
        match &self.parameter {
            Some(p) => format!("{}/{}", self.function, p),
            None => self.function.clone(),
        }
    }
}

impl<S: Into<String>> From<S> for BenchmarkId {
    fn from(s: S) -> Self {
        BenchmarkId { function: s.into(), parameter: None }
    }
}

/// Runs and times the measured closure.
pub struct Bencher {
    samples: usize,
    total_iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Times `f` over the configured number of samples (after one warm-up).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.elapsed_ns += start.elapsed().as_nanos();
        self.total_iters += self.samples as u64;
    }
}

/// Prevents the optimizer from deleting a value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declares a group of benchmark functions runnable by [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `fn main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
