//! Offline stand-in for the subset of the `crossbeam` API this workspace
//! uses: `crossbeam::thread::scope` with `spawn(|_| ..)`, implemented on
//! `std::thread::scope` (available since Rust 1.63, which removed the need
//! for crossbeam's unsafe scoped threads in the first place).

#![warn(missing_docs)]

/// Scoped threads.
pub mod thread {
    use std::any::Any;

    /// Mirror of `crossbeam::thread::Scope`; wraps the std scope so spawn
    /// closures receive a `&Scope` argument like crossbeam's do.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure's `&Scope` argument allows
        /// nested spawns.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope handle; every spawned thread is joined before
    /// this returns. A panicking child propagates as a panic at scope exit
    /// (std semantics), so the `Ok` arm carries crossbeam's meaning: no
    /// worker panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1u64, 2, 3, 4];
        let mut out = vec![0u64; 4];
        super::thread::scope(|s| {
            for (i, slot) in out.iter_mut().enumerate() {
                let data = &data;
                s.spawn(move |_| *slot = data[i] * 10);
            }
        })
        .expect("no worker panicked");
        assert_eq!(out, vec![10, 20, 30, 40]);
    }
}
