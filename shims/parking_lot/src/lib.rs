//! Offline stand-in for the subset of the `parking_lot` API this workspace
//! uses: a [`Mutex`] whose `lock()` returns the guard directly (no poison
//! `Result`), implemented over `std::sync::Mutex`.

#![warn(missing_docs)]

/// A mutex with parking_lot's panic-on-poison-free API.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Acquires the lock, blocking until available. Unlike std, returns the
    /// guard directly; a previous holder's panic just passes the lock on.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consumes the mutex and returns its value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(vec![0u32; 3]);
        m.lock()[1] = 7;
        assert_eq!(m.into_inner(), vec![0, 7, 0]);
    }
}
