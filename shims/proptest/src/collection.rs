//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length distribution for collection strategies.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

/// Generates a `Vec` whose length is drawn from `size` and whose elements
/// are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// Strategy returned by [`fn@vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.hi - self.size.lo) as u128 + 1;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn lengths_respect_bounds() {
        let mut rng = TestRng::for_test("lengths_respect_bounds");
        let strat = vec(0u8..=255, 1..4);
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!((1..4).contains(&v.len()), "{}", v.len());
        }
    }
}
