//! Test configuration and the deterministic per-test generator.

/// How many cases each property runs.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic generator seeded from the test's full path, so every run
/// (and every thread count) sees the same cases.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test identifier (FNV-1a over the name).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit word (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `0..span` (`span >= 1`).
    pub fn below(&mut self, span: u128) -> u128 {
        debug_assert!(span >= 1);
        (self.next_u64() as u128 * span) >> 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_stable_and_name_sensitive() {
        let a = TestRng::for_test("x").next_u64();
        let b = TestRng::for_test("x").next_u64();
        let c = TestRng::for_test("y").next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
