//! Offline stand-in for the subset of the `proptest` API this workspace
//! uses.
//!
//! The build environment has no crates.io access, so this local crate
//! provides the [`proptest!`] macro, the [`strategy::Strategy`] trait with
//! the combinators the test suite needs (ranges, [`strategy::Just`],
//! [`prop_oneof!`], tuples, [`collection::vec`], `prop_map`, and `&str`
//! regex-class strategies), and deterministic case generation. There is no
//! shrinking: a failing case panics immediately with the generated inputs
//! printed, which is enough to reproduce (generation is seeded per test
//! name).

#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Everything a test module needs: `use proptest::prelude::*;`.
pub mod prelude {
    /// Alias of the crate root so `prop::collection::vec(..)` works.
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests. Each `#[test] fn name(arg in strategy, ..)` body
/// runs for `cases` deterministic samples; a failure panics with the inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch($cfg) $($rest)*);
    };
    (@munch($cfg:expr)) => {};
    (@munch($cfg:expr)
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                let described = format!(
                    concat!($(stringify!($arg), " = {:?}; "),*),
                    $(&$arg),*
                );
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| $body),
                );
                if let Err(panic) = outcome {
                    eprintln!(
                        "proptest {}: case {}/{} failed with inputs: {}",
                        stringify!($name), case + 1, config.cases, described,
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::proptest!(@munch($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@munch($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Picks uniformly between several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($s)),+])
    };
}
