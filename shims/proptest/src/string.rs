//! Sampling strings from the tiny regex dialect used as `&str` strategies.
//!
//! Supports exactly what the test suite writes: sequences of character
//! classes (`[a-d]`, `[ -~]`) or literal characters, each optionally
//! followed by a `{m,n}` repetition. Anything else is rejected loudly so a
//! silently-wrong strategy cannot slip in.

use crate::test_runner::TestRng;

/// One atom: a set of `(lo, hi)` inclusive char ranges plus its repetition.
struct Atom {
    ranges: Vec<(char, char)>,
    min: usize,
    max: usize,
}

/// Draws one string matching `pattern`.
pub fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let atoms = parse(pattern);
    let mut out = String::new();
    for atom in &atoms {
        let span = (atom.max - atom.min) as u128 + 1;
        let reps = atom.min + rng.below(span) as usize;
        let total: u128 = atom.ranges.iter().map(|&(lo, hi)| hi as u128 - lo as u128 + 1).sum();
        for _ in 0..reps {
            let mut idx = rng.below(total);
            for &(lo, hi) in &atom.ranges {
                let size = hi as u128 - lo as u128 + 1;
                if idx < size {
                    out.push(char::from_u32(lo as u32 + idx as u32).expect("valid char"));
                    break;
                }
                idx -= size;
            }
        }
    }
    out
}

fn parse(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let ranges = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed class in strategy {pattern:?}"))
                    + i;
                let body = &chars[i + 1..close];
                assert!(
                    !body.is_empty() && body[0] != '^',
                    "unsupported class in strategy {pattern:?}"
                );
                i = close + 1;
                parse_class(body, pattern)
            }
            c => {
                assert!(
                    !"\\^$.|?*+(){}".contains(c),
                    "unsupported regex syntax {c:?} in strategy {pattern:?}"
                );
                i += 1;
                vec![(c, c)]
            }
        };
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed repetition in strategy {pattern:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            let (lo, hi) = body
                .split_once(',')
                .unwrap_or_else(|| panic!("need {{m,n}} repetition in strategy {pattern:?}"));
            (
                lo.parse().expect("numeric repetition bound"),
                hi.parse().expect("numeric repetition bound"),
            )
        } else {
            (1, 1)
        };
        assert!(min <= max, "inverted repetition in strategy {pattern:?}");
        atoms.push(Atom { ranges, min, max });
    }
    atoms
}

fn parse_class(body: &[char], pattern: &str) -> Vec<(char, char)> {
    let mut ranges = Vec::new();
    let mut j = 0;
    while j < body.len() {
        if j + 2 < body.len() && body[j + 1] == '-' {
            assert!(body[j] <= body[j + 2], "inverted class range in strategy {pattern:?}");
            ranges.push((body[j], body[j + 2]));
            j += 3;
        } else {
            ranges.push((body[j], body[j]));
            j += 1;
        }
    }
    assert!(!ranges.is_empty(), "empty class in strategy {pattern:?}");
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_match_their_class() {
        let mut rng = TestRng::for_test("samples_match_their_class");
        for _ in 0..100 {
            let s = sample_pattern("[a-d]", &mut rng);
            assert_eq!(s.len(), 1);
            assert!(('a'..='d').contains(&s.chars().next().unwrap()));

            let t = sample_pattern("[ -~]{0,24}", &mut rng);
            assert!(t.len() <= 24);
            assert!(t.bytes().all(|b| (b' '..=b'~').contains(&b)));
        }
    }

    #[test]
    fn literals_and_mixed_atoms() {
        let mut rng = TestRng::for_test("literals_and_mixed_atoms");
        let s = sample_pattern("ab[0-1]{2,2}", &mut rng);
        assert_eq!(&s[..2], "ab");
        assert_eq!(s.len(), 4);
    }
}
