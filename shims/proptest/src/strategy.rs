//! The [`Strategy`] trait and the combinators the workspace's tests use.

use crate::test_runner::TestRng;
use std::fmt::Debug;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree / shrinking: `sample`
/// draws a full value directly. Failing cases are reported with their
/// inputs, which (with per-test deterministic seeding) is reproducible.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A `&str` is a regex-class strategy (e.g. `"[a-d]"`, `"[ -~]{0,24}"`).
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        crate::string::sample_pattern(self, rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// A boxed strategy, as stored by [`Union`] (built by `prop_oneof!`).
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

/// Boxes a strategy, pinning its value type eagerly so `prop_oneof!` arms
/// unify during inference (a bare `as _` cast resolves too late).
pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    Box::new(s)
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// Uniform choice between several strategies with a common value type.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Union<T> {
    /// Builds a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u128) as usize;
        self.options[i].sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::for_test("combinators_compose");
        let strat = (0u8..4, Just("x".to_string())).prop_map(|(n, s)| s.repeat(n as usize));
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!(v.len() < 4);
            assert!(v.chars().all(|c| c == 'x'));
        }
    }

    #[test]
    fn union_draws_every_arm() {
        let mut rng = TestRng::for_test("union_draws_every_arm");
        let strat = crate::prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[strat.sample(&mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }
}
