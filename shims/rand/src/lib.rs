//! Offline stand-in for the subset of the `rand` 0.10 API this workspace
//! uses.
//!
//! The build environment has no access to a crates.io mirror, so every
//! external dependency is provided as a local shim crate (see
//! `shims/README.md`). This one implements deterministic seeded generation —
//! `rngs::StdRng`, [`SeedableRng::seed_from_u64`], and the [`RngExt`]
//! sampling helpers (`random`, `random_range`, `random_bool`) — on top of a
//! SplitMix64 core. Streams differ from upstream `rand`, which is fine: the
//! workspace only relies on *determinism*, never on a specific stream.

#![warn(missing_docs)]

/// Concrete generators.
pub mod rngs {
    /// The standard deterministic generator: SplitMix64.
    ///
    /// Passes through every 64-bit state exactly once; plenty for synthetic
    /// workload generation (which is all the workspace asks of it).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15) }
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

/// A generator that can be built from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The raw entropy source: one 64-bit word at a time.
pub trait RngCore {
    /// Returns the next 64 bits of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Multiplies a raw 64-bit draw into `0..span` without modulo bias worth
/// caring about (fixed-point multiply-shift).
fn scale(raw: u64, span: u128) -> u128 {
    (raw as u128 * span) >> 64
}

/// An integer type uniformly sampleable from ranges.
pub trait SampleUniform: Copy {
    /// Widens to `i128` (every supported type fits).
    fn to_i128(self) -> i128;
    /// Narrows from `i128`; the value is always in range by construction.
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            fn from_i128(v: i128) -> Self {
                v as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range that can be sampled uniformly.
///
/// Single blanket impls per range shape (mirroring upstream) so type
/// inference unifies the range's element type with the result's use site.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start.to_i128(), self.end.to_i128());
        assert!(lo < hi, "cannot sample empty range");
        T::from_i128(lo + scale(rng.next_u64(), (hi - lo) as u128) as i128)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start().to_i128(), self.end().to_i128());
        assert!(lo <= hi, "cannot sample empty range");
        T::from_i128(lo + scale(rng.next_u64(), (hi - lo) as u128 + 1) as i128)
    }
}

/// A type with a "default" uniform distribution, for [`RngExt::random`].
pub trait Random {
    /// Draws one value.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Convenience sampling methods, available on every [`RngCore`].
pub trait RngExt: RngCore {
    /// Draws a value of `T` from its default uniform distribution.
    fn random<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random(self)
    }

    /// Draws uniformly from `range`. Panics on an empty range.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Random>::random(self) < p
    }
}

impl<T: RngCore + ?Sized> RngExt for T {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(8);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = r.random_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = r.random_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = r.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| r.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }
}
