//! Umbrella crate for the GSpecPal reproduction.
//!
//! Re-exports the public surface of every workspace crate so examples and
//! integration tests can depend on a single package. See `README.md` for the
//! architecture overview and `DESIGN.md` for the per-experiment index.

#![warn(missing_docs)]

pub use gspecpal as framework;
pub use gspecpal_fsm as fsm;
pub use gspecpal_gpu as gpu;
pub use gspecpal_regex as regex;
pub use gspecpal_serve as serve;
pub use gspecpal_workloads as workloads;
